"""Deprecated one-call protocol drivers.

These entry points predate the unified API in :mod:`repro.api`.  They are
kept as thin shims so existing callers keep working, but new code should
go through the registry / session instead::

    from repro.api import JoinSession, get_estimator

    session = JoinSession(params, seed=7)
    session.collect("A", values_a)
    session.collect("B", values_b)
    result = session.estimate()

``JoinEstimate`` is now an alias of the single result type
:class:`~repro.api.EstimateResult`; both shims return it unchanged from
the canonical drivers :func:`repro.api.run_join_sketch` /
:func:`repro.api.run_join_sketch_plus`.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional

from ..api.result import EstimateResult
from ..rng import RandomState
from .params import SketchParams

__all__ = ["JoinEstimate", "run_ldp_join_sketch", "run_ldp_join_sketch_plus"]

#: Deprecated alias of the unified result type.
JoinEstimate = EstimateResult


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_ldp_join_sketch(
    values_a: Iterable[int],
    values_b: Iterable[int],
    params: SketchParams,
    seed: RandomState = None,
) -> EstimateResult:
    """Deprecated shim for :func:`repro.api.run_join_sketch`.

    Runs the single-phase LDPJoinSketch protocol end to end (Algorithms
    1-2, Eq. 5) through a :class:`~repro.api.JoinSession`.
    """
    _deprecated(
        "repro.core.run_ldp_join_sketch",
        "repro.api.run_join_sketch (or repro.api.JoinSession)",
    )
    from ..api.estimators import run_join_sketch

    return run_join_sketch(values_a, values_b, params, seed=seed)


def run_ldp_join_sketch_plus(
    values_a: Iterable[int],
    values_b: Iterable[int],
    domain_size: int,
    params: SketchParams,
    *,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    phase1_params: Optional[SketchParams] = None,
    paper_faithful_correction: bool = False,
    seed: RandomState = None,
) -> EstimateResult:
    """Deprecated shim for :func:`repro.api.run_join_sketch_plus`.

    Runs the two-phase LDPJoinSketch+ protocol end to end (Algorithms
    3-5).
    """
    _deprecated(
        "repro.core.run_ldp_join_sketch_plus",
        "repro.api.run_join_sketch_plus",
    )
    from ..api.estimators import run_join_sketch_plus

    return run_join_sketch_plus(
        values_a,
        values_b,
        domain_size,
        params,
        sample_rate=sample_rate,
        threshold=threshold,
        phase1_params=phase1_params,
        paper_faithful_correction=paper_faithful_correction,
        seed=seed,
    )
