"""Multi-way chain joins under LDP — the Section VI extension.

The construction privatises COMPASS (see :mod:`repro.sketches.compass`):

* **end tables** (one join attribute) run the ordinary LDPJoinSketch
  protocol with that attribute's hash pairs; the ``k`` sketch rows double
  as the ``k`` COMPASS replicas;
* a **middle table** tuple ``t = (a, b)`` with join attributes ``(A, B)``
  is encoded by sampling a replica ``j ~ U[k]`` and two columns
  ``l1 ~ U[m1]``, ``l2 ~ U[m2]`` and reporting the doubly-transformed
  sample

  .. math::

     y = b_\\pm \\cdot H_{m_1}[h_A(a), l_1]\\; \\xi_A(a)\\,\\xi_B(b)\\;
         H_{m_2}[l_2, h_B(b)],

  with the usual sign channel ``Pr[b_\\pm = -1] = 1/(e^\\epsilon+1)``.
  The server accumulates ``k \\cdot c_\\epsilon \\cdot y`` into cell
  ``[j, l_1, l_2]`` and inverts the transform on both axes
  (``M~ = H^T M H^T``, one FWHT per axis).

The chain estimate is the replica-wise vector/matrix chain product,
median over replicas (Eq. 27).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..errors import (
    IncompatibleSketchError,
    ParameterError,
    require_merge_compatible,
)
from ..hashing import HashPairs
from ..privacy.response import c_epsilon, flip_probability
from ..rng import RandomState, ensure_rng, spawn
from ..transform.hadamard import fwht_inplace, sample_hadamard_entries
from ..validation import (
    as_value_array,
    require_positive_float,
    require_positive_int,
    require_power_of_two,
)
from .client import ReportBatch, encode_reports
from .params import SketchParams
from .server import LDPJoinSketch, build_sketch

__all__ = [
    "MiddleReportBatch",
    "LDPMiddleSketch",
    "LDPCompassProtocol",
    "finalize_middle_counts",
]


def finalize_middle_counts(raw: np.ndarray) -> np.ndarray:
    """Invert the client transform of a middle-table accumulator on both
    axes: ``M~ = H_m1 M H_m2`` (one FWHT per axis).

    Shared by :meth:`LDPCompassProtocol.build_middle` and the incremental
    :class:`~repro.api.JoinSession`, which accumulates pre-transform and
    finalises on demand.
    """
    raw = np.ascontiguousarray(raw, dtype=np.float64)
    fwht_inplace(raw)                       # right axis
    raw = np.swapaxes(raw, 1, 2).copy()
    fwht_inplace(raw)                       # left axis
    return np.swapaxes(raw, 1, 2).copy()


@dataclass(frozen=True)
class MiddleReportBatch:
    """Wire format of middle-table reports: ``(y, j, l1, l2)`` per tuple."""

    ys: np.ndarray
    replicas: np.ndarray
    left_cols: np.ndarray
    right_cols: np.ndarray
    k: int
    m_left: int
    m_right: int
    epsilon: float

    def __post_init__(self) -> None:
        for name in ("ys", "replicas", "left_cols", "right_cols"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=np.int64))
        shapes = {self.ys.shape, self.replicas.shape, self.left_cols.shape, self.right_cols.shape}
        if len(shapes) != 1 or self.ys.ndim != 1:
            raise ParameterError("report components must be equal-length 1-D arrays")

    def __len__(self) -> int:
        return int(self.ys.size)

    @property
    def report_bits(self) -> int:
        """Bits per report: sign + replica index + two column indices."""
        return (
            1
            + max(1, int(np.ceil(np.log2(self.k))))
            + max(1, int(np.ceil(np.log2(self.m_left))))
            + max(1, int(np.ceil(np.log2(self.m_right))))
        )

    @property
    def total_bits(self) -> int:
        """Total uplink bits of this batch."""
        return len(self) * self.report_bits


class LDPMiddleSketch:
    """Constructed two-attribute sketch: ``k`` replicas of ``(m1, m2)``."""

    __slots__ = ("left_pairs", "right_pairs", "counts", "epsilon", "num_reports")

    def __init__(
        self,
        left_pairs: HashPairs,
        right_pairs: HashPairs,
        counts: np.ndarray,
        epsilon: float,
        num_reports: int,
    ) -> None:
        if left_pairs.k != right_pairs.k:
            raise ParameterError("left and right hash pairs must share k")
        expected = (left_pairs.k, left_pairs.m, right_pairs.m)
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != expected:
            raise ParameterError(f"counts shaped {counts.shape}, expected {expected}")
        self.left_pairs = left_pairs
        self.right_pairs = right_pairs
        self.counts = counts
        self.epsilon = epsilon
        self.num_reports = int(num_reports)

    @property
    def k(self) -> int:
        """Number of replicas."""
        return self.left_pairs.k

    def memory_bytes(self) -> int:
        """Size of the counter tensor in bytes."""
        return int(self.counts.nbytes)

    def check_mergeable(self, other: "LDPMiddleSketch") -> None:
        """Raise :class:`IncompatibleSketchError` unless ``other`` shares
        hash pairs (both attributes) and privacy budget."""
        if not isinstance(other, LDPMiddleSketch):
            raise IncompatibleSketchError(
                f"cannot merge LDPMiddleSketch with {type(other).__name__}"
            )
        require_merge_compatible(
            "middle sketches",
            **{
                "hash pairs": (
                    (self.left_pairs, self.right_pairs),
                    (other.left_pairs, other.right_pairs),
                ),
                "privacy budget (epsilon)": (self.epsilon, other.epsilon),
            },
        )

    def merge(self, other: "LDPMiddleSketch") -> "LDPMiddleSketch":
        """Add ``other``'s counters into this sketch (post-transform sum —
        valid because the FWHT is linear). Returns self."""
        self.check_mergeable(other)
        self.counts += other.counts
        self.num_reports += other.num_reports
        return self


class LDPCompassProtocol:
    """End-to-end LDP chain-join protocol over ``n`` join attributes.

    Parameters
    ----------
    attribute_widths:
        Sketch width ``m`` (power of two) per join attribute.
    k:
        Number of replicas, shared by every attribute.
    epsilon:
        Per-report privacy budget (each user owns one tuple of one table,
        so one report exhausts the whole budget).
    seed:
        Master seed for the attribute hash pairs.
    """

    def __init__(
        self,
        attribute_widths: Sequence[int],
        k: int,
        epsilon: float,
        seed: RandomState = None,
        *,
        pairs: Optional[Sequence[HashPairs]] = None,
    ) -> None:
        self.k = require_positive_int("k", k)
        self.epsilon = require_positive_float("epsilon", epsilon)
        if pairs is not None:
            pairs = list(pairs)
            if not pairs:
                raise ParameterError("need at least one join attribute")
            for p in pairs:
                if p.k != self.k:
                    raise ParameterError(
                        f"shared hash pairs must have k={self.k}, got {p.k}"
                    )
            if attribute_widths and [p.m for p in pairs] != list(attribute_widths):
                raise ParameterError(
                    "attribute_widths do not match the provided hash pairs"
                )
            self.attribute_pairs: List[HashPairs] = pairs
            return
        if not attribute_widths:
            raise ParameterError("need at least one join attribute")
        rng = ensure_rng(seed)
        self.attribute_pairs = [
            HashPairs(self.k, require_power_of_two("m", m), spawn(rng))
            for m in attribute_widths
        ]

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[HashPairs], epsilon: float
    ) -> "LDPCompassProtocol":
        """A protocol over pre-built hash pairs (one per join attribute).

        This is the sharding path: every shard (and every client cohort)
        of one collection period must run against the *same* pairs, so the
        coordinator builds them once and the shards are constructed from
        them.
        """
        pairs = list(pairs)
        if not pairs:
            raise ParameterError("need at least one join attribute")
        return cls((), pairs[0].k, epsilon, pairs=pairs)

    @property
    def num_attributes(self) -> int:
        """Number of join attributes in the chain."""
        return len(self.attribute_pairs)

    def params_for(self, attribute: int) -> SketchParams:
        """The :class:`SketchParams` of one attribute's end sketch."""
        pairs = self._pairs(attribute)
        return SketchParams(self.k, pairs.m, self.epsilon)

    # ------------------------------------------------------------------
    # End tables (single join attribute): plain LDPJoinSketch
    # ------------------------------------------------------------------
    def encode_end(
        self,
        attribute: int,
        values: Iterable[int],
        rng: RandomState = None,
    ) -> ReportBatch:
        """Client side for an end table (Algorithm 1 with shared pairs)."""
        return encode_reports(values, self.params_for(attribute), self._pairs(attribute), rng)

    def build_end(self, attribute: int, reports: ReportBatch) -> LDPJoinSketch:
        """Server side for an end table (Algorithm 2)."""
        return build_sketch(reports, self._pairs(attribute))

    # ------------------------------------------------------------------
    # Middle tables (two join attributes)
    # ------------------------------------------------------------------
    def encode_middle(
        self,
        left_attribute: int,
        left_values: Iterable[int],
        right_values: Iterable[int],
        rng: RandomState = None,
    ) -> MiddleReportBatch:
        """Client side for a two-attribute middle table (Fig. 4)."""
        return self._encode_two_attribute(
            self._pairs(left_attribute),
            self._pairs(left_attribute + 1),
            left_values,
            right_values,
            rng,
        )

    def encode_cycle_table(
        self,
        index: int,
        left_values: Iterable[int],
        right_values: Iterable[int],
        rng: RandomState = None,
    ) -> MiddleReportBatch:
        """Client side for table ``index`` of a cycle join.

        Cycle table ``i`` joins attribute ``i`` with ``(i + 1) mod n``; the
        wrap-around closes the ring (Section VI discussion).
        """
        return self._encode_two_attribute(
            self._pairs(index % self.num_attributes),
            self._pairs((index + 1) % self.num_attributes),
            left_values,
            right_values,
            rng,
        )

    def _encode_two_attribute(
        self,
        left_pairs: HashPairs,
        right_pairs: HashPairs,
        left_values: Iterable[int],
        right_values: Iterable[int],
        rng: RandomState = None,
    ) -> MiddleReportBatch:
        left = as_value_array(left_values, "left_values")
        right = as_value_array(right_values, "right_values")
        if left.shape != right.shape:
            raise ParameterError("left and right columns must have equal length")
        generator = ensure_rng(rng)
        n = left.size
        replicas = generator.integers(0, self.k, size=n)
        l1 = generator.integers(0, left_pairs.m, size=n)
        l2 = generator.integers(0, right_pairs.m, size=n)
        left_buckets = left_pairs.bucket_rows(replicas, left)
        right_buckets = right_pairs.bucket_rows(replicas, right)
        signs = left_pairs.sign_rows(replicas, left) * right_pairs.sign_rows(replicas, right)
        w = (
            signs
            * sample_hadamard_entries(left_buckets, l1, left_pairs.m)
            * sample_hadamard_entries(l2, right_buckets, right_pairs.m)
        )
        flips = generator.random(n) < flip_probability(self.epsilon)
        ys = np.where(flips, -w, w).astype(np.int64)
        return MiddleReportBatch(
            ys, replicas, l1, l2, self.k, left_pairs.m, right_pairs.m, self.epsilon
        )

    def build_middle(self, left_attribute: int, reports: MiddleReportBatch) -> LDPMiddleSketch:
        """Server side for a middle table: accumulate, double-FWHT, debias."""
        return self._build_two_attribute(
            self._pairs(left_attribute), self._pairs(left_attribute + 1), reports
        )

    def build_cycle_table(self, index: int, reports: MiddleReportBatch) -> LDPMiddleSketch:
        """Server side for cycle table ``index`` (wrap-around pairing)."""
        return self._build_two_attribute(
            self._pairs(index % self.num_attributes),
            self._pairs((index + 1) % self.num_attributes),
            reports,
        )

    def _build_two_attribute(
        self,
        left_pairs: HashPairs,
        right_pairs: HashPairs,
        reports: MiddleReportBatch,
    ) -> LDPMiddleSketch:
        if reports.m_left != left_pairs.m or reports.m_right != right_pairs.m or reports.k != self.k:
            raise IncompatibleSketchError("middle reports do not match the protocol shape")
        accum = np.zeros((self.k, left_pairs.m, right_pairs.m), dtype=np.int64)
        scatter_add_signed_units(
            accum, (reports.replicas, reports.left_cols, reports.right_cols), reports.ys
        )
        scale = self.k * c_epsilon(self.epsilon)
        # Finalisation boundary: the int64 accumulator is scaled into the
        # float table the sketch queries — named so (not ``raw``) because
        # merge paths must never see a float-cast accumulator (RPR102).
        table = finalize_middle_counts(accum.astype(np.float64) * scale)
        return LDPMiddleSketch(left_pairs, right_pairs, table, self.epsilon, len(reports))

    # ------------------------------------------------------------------
    # Chain estimation (Eq. 27)
    # ------------------------------------------------------------------
    def estimate_chain(
        self,
        first: LDPJoinSketch,
        middles: Sequence[LDPMiddleSketch],
        last: LDPJoinSketch,
    ) -> float:
        """Median over replicas of the chain product
        ``M1[j] @ M2[j] @ ... @ Mn[j]``."""
        if len(middles) != self.num_attributes - 1:
            raise IncompatibleSketchError(
                f"chain over {self.num_attributes} attributes needs "
                f"{self.num_attributes - 1} middle sketches, got {len(middles)}"
            )
        if first.pairs != self.attribute_pairs[0]:
            raise IncompatibleSketchError("first end sketch does not use attribute 0 hash pairs")
        if last.pairs != self.attribute_pairs[-1]:
            raise IncompatibleSketchError(
                "last end sketch does not use the final attribute hash pairs"
            )
        for idx, mid in enumerate(middles):
            if (
                mid.left_pairs != self.attribute_pairs[idx]
                or mid.right_pairs != self.attribute_pairs[idx + 1]
            ):
                raise IncompatibleSketchError(
                    f"middle sketch {idx} does not match the chain hash pairs"
                )
        # Replica-batched chain product: one (k, 1, m) @ (k, m, m') matmul
        # per middle table instead of the k-by-middles Python double loop —
        # the j-th batch entry is exactly the j-th replica's vector/matrix
        # chain (tests pin the equivalence against the loop form).
        acc = first.counts[:, None, :]
        for mid in middles:
            acc = np.matmul(acc, mid.counts)
        estimates = np.matmul(acc, last.counts[:, :, None])[:, 0, 0]
        return float(np.median(estimates))

    def estimate_cycle(self, tables: Sequence[LDPMiddleSketch]) -> float:
        """Median over replicas of the cycle-product trace (Section VI
        discussion: "uncomplicated cyclic joins").

        ``tables[i]`` must join attribute ``i`` with ``(i + 1) mod n``; the
        replica-``j`` estimate is ``trace(M_0[j] @ ... @ M_{n-1}[j])``.
        """
        if len(tables) != self.num_attributes:
            raise IncompatibleSketchError(
                f"a cycle over {self.num_attributes} attributes needs "
                f"{self.num_attributes} tables, got {len(tables)}"
            )
        for idx, sketch in enumerate(tables):
            expected_left = self.attribute_pairs[idx]
            expected_right = self.attribute_pairs[(idx + 1) % self.num_attributes]
            if sketch.left_pairs != expected_left or sketch.right_pairs != expected_right:
                raise IncompatibleSketchError(
                    f"cycle table {idx} does not match the ring hash pairs"
                )
        # Same replica-batched product as estimate_chain, closed by the
        # per-replica trace of the (k, m, m) ring product.
        acc = tables[0].counts
        for sketch in tables[1:]:
            acc = np.matmul(acc, sketch.counts)
        estimates = np.trace(acc, axis1=1, axis2=2)
        return float(np.median(estimates))

    def _pairs(self, attribute: int) -> HashPairs:
        if not 0 <= attribute < self.num_attributes:
            raise ParameterError(
                f"attribute must lie in [0, {self.num_attributes}), got {attribute}"
            )
        return self.attribute_pairs[attribute]
