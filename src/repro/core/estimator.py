"""Estimation helpers on top of constructed LDPJoinSketches.

Two free functions keep the server read-out logic reusable outside the
sketch class:

* :func:`estimate_join_size` — Eq. (5) with input checking, the function
  the protocol drivers and experiment harness call;
* :func:`find_frequent_items` — the phase-1 step of LDPJoinSketch+
  (Section V-C): scan a candidate domain with Theorem 7 frequency
  estimates and keep every value whose estimate exceeds
  ``threshold * total``; the paper's frequent-item set is the *union*
  of the two attributes' sets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..validation import require_positive_int, require_probability
from .server import LDPJoinSketch

__all__ = ["estimate_join_size", "find_frequent_items"]


def estimate_join_size(sketch_a: LDPJoinSketch, sketch_b: LDPJoinSketch) -> float:
    """Eq. (5): ``median_j sum_x MA[j, x] * MB[j, x]``."""
    return sketch_a.join_size(sketch_b)


def find_frequent_items(
    sketch: LDPJoinSketch,
    domain_size: int,
    threshold: float,
    *,
    total: Optional[float] = None,
    chunk_size: int = 262_144,
    method: str = "median",
) -> np.ndarray:
    """Values whose estimated frequency exceeds ``threshold * total``.

    Parameters
    ----------
    sketch:
        A constructed LDPJoinSketch summarising the attribute (phase 1 of
        LDPJoinSketch+ builds it from sampled users).
    domain_size:
        Candidate domain ``[0, domain_size)`` to scan.
    threshold:
        The paper's relative threshold ``theta`` in ``(0, 1]``.
    total:
        Reference total frequency; defaults to the number of reports that
        built the sketch (``|S_A|``), matching
        ``FI_A = {d : f~(d) > theta |A|}`` evaluated at sample scale.
    chunk_size:
        Domain values are scanned in chunks of this size to bound memory
        (``k x chunk`` intermediates).
    method:
        ``"median"`` (default) selects with the collision-robust
        Count-Sketch read-out; ``"mean"`` is the paper-verbatim Theorem 7
        estimator, which a single colliding heavy value can push over the
        threshold for thousands of light items (see DESIGN.md).

    Returns
    -------
    numpy.ndarray
        Sorted array of frequent value ids.
    """
    domain_size = require_positive_int("domain_size", domain_size)
    threshold = require_probability("threshold", threshold)
    chunk_size = require_positive_int("chunk_size", chunk_size)
    if total is None:
        total = float(sketch.num_reports)
    if total < 0:
        raise ParameterError(f"total must be >= 0, got {total}")

    cutoff = threshold * total
    hits = []
    for start in range(0, domain_size, chunk_size):
        candidates = np.arange(start, min(start + chunk_size, domain_size), dtype=np.int64)
        estimates = sketch.frequencies(candidates, method=method)
        hits.append(candidates[estimates > cutoff])
    if not hits:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(hits)
