"""The compute-backend kernel ABI.

Every hot path of the simulator — k-wise Mersenne hashing, the fused
client encode→accumulate kernels, the FWHT butterfly, flattened-index
scatter-adds and the frequency-oracle support scans — funnels through the
narrow set of kernels declared here.  :mod:`repro.backend.numpy_backend`
is the reference implementation (the vectorised NumPy code the library
grew up with, extracted behind this interface);
:mod:`repro.backend.numba_backend` provides optional ``@njit`` compiled
loop kernels.  Because the ABI is small and purely deterministic, adding
a backend means implementing eight array functions — not forking the
protocol code.

Determinism contract
--------------------
Backends never draw randomness.  Every stochastic input (sampled rows and
columns, flip-channel indicators) is drawn by the *dispatcher* from a
NumPy :class:`~numpy.random.Generator` in the protocol's documented draw
order and handed to the kernel as plain arrays.  A kernel is a pure
function of its array arguments, required to reproduce the reference
backend **bit for bit**:

* integer kernels (hashing, encode→accumulate, integer scatters) compute
  exact modular / integer arithmetic, so equality is literal;
* the FWHT butterfly must apply the same ``(a + b, a - b)`` operation per
  element pair per level, which makes the float results identical too.

``tests/test_backend_parity.py`` enforces the contract over a seeded grid
(odd chunk sizes, ``T = 1``, ``n ∈ {0, 1}``, shared vs per-trial pairs).

Array-argument conventions
--------------------------
* ``coefficients_t`` matrices are the *transposed* ``(degree, R)`` uint64
  coefficient layouts produced by :mod:`repro.hashing.pairs` (one
  contiguous row per degree); entries lie in ``[0, p)`` with
  ``p = 2**31 - 1``.
* ``x`` evaluation points are uint64 values in ``[0, p)`` — dispatchers
  validate the domain once per batch, kernels trust their inputs.
* ``rows`` / ``cols`` are int64 index arrays already range-checked by the
  dispatcher.
* ``out`` accumulators are C-contiguous int64 unless stated otherwise
  and are mutated in place.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

__all__ = ["Backend", "SPARSE_RATIO"]

#: Batch-vs-accumulator ratio below which :meth:`Backend.bincount_accumulate`
#: takes the element-wise scatter instead of a dense histogram.  Part of the
#: ABI, not a per-backend tunable: for float weights the two branches sum
#: bins in different orders (element-wise into ``out`` vs per-bin totals
#: added once), so every backend must flip branches at the *same* threshold
#: or the bit-for-bit parity contract breaks in the ratio window between
#: two thresholds.
SPARSE_RATIO = 16


class Backend(abc.ABC):
    """Abstract compute backend: the eight-kernel ABI.

    Subclasses set :attr:`name` (the registry key users select with
    ``set_backend`` / ``REPRO_BACKEND``) and implement the kernels.
    Instances are stateless and shared process-wide; kernels must be
    thread-compatible (no hidden mutable state beyond ``out`` arguments).
    """

    #: Registry key ("numpy", "numba", ...).
    name: str = "abstract"

    # ------------------------------------------------------------------
    # k-wise Mersenne hashing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def polyval_mersenne_rows(
        self, coefficients_t: np.ndarray, rows: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Per-element polynomial gather-and-evaluate ``g_{rows[i]}(x[i])``.

        ``coefficients_t`` is ``(degree, R)`` uint64; ``rows`` (int64, in
        ``[0, R)``) selects one polynomial per element; ``x`` (uint64, in
        ``[0, p)``) holds the evaluation points.  Returns uint64 residues
        in ``[0, p)`` shaped like ``x``.  This is the client hot path:
        one bucket hash and one sign hash per report.
        """

    @abc.abstractmethod
    def polyval_mersenne_all(
        self, coefficients_t: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """All-rows evaluation ``G[j, i] = g_j(x[i])`` — shape ``(R, n)``.

        The server-side scan path (domain-wide frequency read-outs, the
        non-private Fast-AGMS update, the HCMS/Count-Mean support scan).
        """

    # ------------------------------------------------------------------
    # Fused client encode→accumulate (Algorithm 1 hot paths)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fused_encode_accumulate(
        self,
        bucket_coefficients_t: np.ndarray,
        sign_coefficients_t: np.ndarray,
        x: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        flips: np.ndarray,
        m: int,
        out: np.ndarray,
    ) -> None:
        """One chunk of perturbed reports folded into a ``(k, m)`` sketch.

        For each element ``i``: evaluate the bucket hash
        ``b = g_{rows[i]}(x[i]) mod m`` and the sign-hash parity, XOR with
        the sampled Hadamard entry parity ``popcount(b & cols[i]) & 1``
        and the boolean flip indicator ``flips[i]``, and scatter the
        resulting ``y ∈ {-1, +1}`` into ``out[rows[i], cols[i]]``.  The
        per-trial variant of the fused kernel (one accumulator).
        """

    @abc.abstractmethod
    def fused_encode_accumulate_trials(
        self,
        bucket_coefficients_t: np.ndarray,
        sign_coefficients_t: np.ndarray,
        x: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        flips: np.ndarray,
        m: int,
        out: np.ndarray,
    ) -> None:
        """Trial-axis variant: ``T`` trials of one value chunk in one call.

        ``x`` is the shared ``(c,)`` value chunk; ``rows`` / ``cols`` /
        ``flips`` are ``(T, c)`` per-trial draws; ``out`` is ``(T, k, m)``.
        Trial ``t``'s coefficient columns sit at ``t * k + rows[t, i]`` in
        the stacked ``(degree, T * k)`` matrices (the layout
        :func:`repro.hashing.pairs.stack_pair_coefficients` builds).  Must
        equal ``T`` independent :meth:`fused_encode_accumulate` calls on
        ``out[t]`` bit for bit.
        """

    @abc.abstractmethod
    def fused_encode_shared_pass(
        self,
        bucket_coefficients_t: np.ndarray,
        sign_coefficients_t: np.ndarray,
        x: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        m: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Grouped variant front half: unperturbed signs + flat cells.

        The trial-group kernel (common random numbers across the epsilon
        axis) hashes and samples once per (dataset, method) block; only
        the flip channel is drawn per trial.  This kernel computes the
        shared part: returns ``(cell, base_signs)`` where
        ``cell[i] = rows[i] * m + cols[i]`` (int64 flat sketch index) and
        ``base_signs[i] ∈ {-1, +1}`` (int64) is the sign-hash ⊕ Hadamard
        parity *before* any flip.  The dispatcher applies the per-trial
        threshold bands on top via :meth:`bincount_accumulate`.
        """

    # ------------------------------------------------------------------
    # Transform
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fwht_batch_inplace(self, data: np.ndarray) -> np.ndarray:
        """In-place fast Walsh–Hadamard transform along the last axis.

        ``data`` is a float array whose last dimension ``m`` is a power
        of two (``m >= 2``; the dispatcher already handled ``m = 1`` and
        dtype validation).  Each butterfly level must apply
        ``(a, b) <- (a + b, a - b)`` to the same element pairs as the
        reference backend so float results stay bit-identical.  Returns
        ``data``.
        """

    # ------------------------------------------------------------------
    # Scatter-add
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def bincount_accumulate(
        self, out: np.ndarray, flat: np.ndarray, weights: Optional[np.ndarray]
    ) -> None:
        """``out.reshape(-1)[flat] += weights`` with repeated indices.

        ``out`` is a C-contiguous accumulator of any shape; ``flat``
        holds int64 raveled indices (already bounds-checked and computed
        in int64 — see :func:`repro.accumulate._flat_indices` for the
        int32-overflow guard).  ``weights`` is ``None`` for unit counts,
        else an array broadcastable against ``flat``.  Integer ``out``
        with integer-valued ``weights`` must accumulate exactly; float
        accumulation must match the reference backend's in-input-order
        per-bin summation bit for bit.
        """

    # ------------------------------------------------------------------
    # Frequency-oracle support scans
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def oracle_support_scan(
        self,
        a: np.ndarray,
        b: np.ndarray,
        candidates: np.ndarray,
        g: int,
        *,
        reports: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Candidate supports of a local-hashing oracle (OLH / FLH).

        The hash family is ``h_r(x) = ((a[r] * x + b[r]) mod p) mod g``
        with ``p = 2**31 - 1``.  Exactly one of ``reports`` / ``counts``
        is given:

        * ``reports`` (exact OLH): one hash per user; the support of
          candidate ``d`` is ``#{u : reports[u] = h_u(d)}`` — a
          Theta(users × candidates) scan;
        * ``counts`` (FLH): a shared ``(pool, g)`` count matrix; the
          support is ``sum_r counts[r, h_r(d)]`` — pool-sized lookups.

        Returns float64 supports shaped like ``candidates``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
