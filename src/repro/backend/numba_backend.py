"""Optional Numba JIT backend: compiled loop kernels for every hot path.

Importing this module requires `numba <https://numba.pydata.org>`_; the
registry treats an :class:`ImportError` here as "backend unavailable" and
falls back to :class:`~repro.backend.numpy_backend.NumpyBackend`.  Nothing
else in the library imports numba, so the dependency stays strictly
optional.

Design notes
------------
* Kernels are ``@njit(cache=True)`` loop nests — no full-array
  temporaries, no per-chunk NumPy dispatch.  The embarrassingly parallel
  ones (per-element hashing, per-row FWHT, per-candidate support scans)
  additionally use ``parallel=True`` with ``prange``.
* **Bit-for-bit parity with the NumPy backend is by construction**: all
  randomness is drawn by the dispatchers from NumPy generators (in the
  protocol draw order) and enters these kernels as plain arrays, and the
  arithmetic here is exact integer/modular math — plus an FWHT that
  applies the identical ``(a + b, a - b)`` float operation per element
  pair per level.  ``tests/test_backend_parity.py`` enforces this over a
  seeded grid whenever numba is installed.
* The fused single-accumulator kernel keeps one private ``(k, m)``
  histogram per thread and reduces them once per chunk — race-free
  without atomics, and ~1 MB per thread at the paper's default shape.
* Scatter-adds into *float* accumulators replicate NumPy's bincount
  contract (per-bin sums formed in input order in a zeroed float64
  transient, then added to ``out`` once) so float results match the
  reference backend bit for bit even under non-associative rounding.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import numba  # noqa: F401 - availability probe; ImportError gates the backend
from numba import njit, prange

from .base import SPARSE_RATIO, Backend

__all__ = ["NumbaBackend"]

_P = np.uint64((1 << 31) - 1)
_SHIFT = np.uint64(31)
_ONE = np.uint64(1)


@njit(cache=True)
def _polyval_one(coefficients_t, row, x):
    """Horner evaluation of one polynomial over GF(2**31 - 1).

    ``acc`` is kept canonical in ``[0, p)`` after every step, so the
    uint64 product ``acc * x`` stays below ``2**62`` and the shift-add
    Mersenne fold is exact — the residue equals the NumPy lazy-fold
    kernel's output for every input.
    """
    degree = coefficients_t.shape[0]
    acc = coefficients_t[degree - 1, row]
    for t in range(degree - 2, -1, -1):
        acc = acc * x + coefficients_t[t, row]
        acc = (acc & _P) + (acc >> _SHIFT)
        acc = (acc & _P) + (acc >> _SHIFT)
        if acc >= _P:
            acc -= _P
    return acc


@njit(cache=True)
def _parity64(v):
    """Parity of the popcount of a uint64 (word-level XOR fold)."""
    v ^= v >> np.uint64(32)
    v ^= v >> np.uint64(16)
    v ^= v >> np.uint64(8)
    v ^= v >> np.uint64(4)
    v ^= v >> np.uint64(2)
    v ^= v >> np.uint64(1)
    return v & _ONE


@njit(cache=True, parallel=True)
def _polyval_rows_kernel(coefficients_t, rows, x, out):
    for i in prange(x.size):
        out[i] = _polyval_one(coefficients_t, rows[i], x[i])


@njit(cache=True, parallel=True)
def _polyval_all_kernel(coefficients_t, x, out):
    k = coefficients_t.shape[1]
    for j in prange(k):
        for i in range(x.size):
            out[j, i] = _polyval_one(coefficients_t, j, x[i])


@njit(cache=True)
def _encode_y(bucket_coeffs_t, sign_coeffs_t, x_i, coeff_row, col, flip, m64, pow2):
    """One report's payload: bucket, then the XOR of the three sign bits."""
    braw = _polyval_one(bucket_coeffs_t, coeff_row, x_i)
    bucket = braw & (m64 - _ONE) if pow2 else braw % m64
    sign_parity = _polyval_one(sign_coeffs_t, coeff_row, x_i) & _ONE
    hadamard_parity = _parity64(bucket & np.uint64(col))
    parity = sign_parity ^ hadamard_parity
    if flip:
        parity ^= _ONE
    y = 1 - 2 * np.int64(parity)
    return np.int64(bucket), y


@njit(cache=True)
def _fused_encode_accumulate_serial_kernel(
    bucket_coeffs_t, sign_coeffs_t, x, rows, cols, flips, m, out
):
    # Direct serial scatter — no private histograms to zero or reduce.
    # Integer sums are order-independent, so the result is identical to
    # the parallel kernel and to the reference backend.
    m64 = np.uint64(m)
    pow2 = (m & (m - 1)) == 0
    for i in range(x.size):
        bucket, y = _encode_y(
            bucket_coeffs_t, sign_coeffs_t, x[i], rows[i], cols[i], flips[i],
            m64, pow2,
        )
        out[rows[i], cols[i]] += y


@njit(cache=True, parallel=True)
def _fused_encode_accumulate_kernel(
    bucket_coeffs_t, sign_coeffs_t, x, rows, cols, flips, m, out
):
    n = x.size
    k = out.shape[0]
    m64 = np.uint64(m)
    pow2 = (m & (m - 1)) == 0
    nthreads = numba.get_num_threads()
    # One private (k, m) histogram per thread, reduced once per chunk —
    # race-free scatter without atomics.
    private = np.zeros((nthreads, k, m), dtype=np.int64)
    for i in prange(n):
        tid = numba.get_thread_id()
        bucket, y = _encode_y(
            bucket_coeffs_t, sign_coeffs_t, x[i], rows[i], cols[i], flips[i],
            m64, pow2,
        )
        private[tid, rows[i], cols[i]] += y
    # Reduce the privates in parallel over sketch rows so the reduction
    # cost is O(nthreads * k * m / nthreads) per core, not serial.
    for j in prange(k):
        for col in range(m):
            acc = np.int64(0)
            for t in range(nthreads):
                acc += private[t, j, col]
            out[j, col] += acc


@njit(cache=True, parallel=True)
def _fused_encode_accumulate_trials_kernel(
    bucket_coeffs_t, sign_coeffs_t, x, rows, cols, flips, m, out
):
    trials, c = rows.shape
    k = out.shape[1]
    m64 = np.uint64(m)
    pow2 = (m & (m - 1)) == 0
    # Trials are independent accumulators: parallelise the trial axis and
    # keep each trial's scatter serial — race-free by construction.
    for t in prange(trials):
        for i in range(c):
            bucket, y = _encode_y(
                bucket_coeffs_t, sign_coeffs_t, x[i], t * k + rows[t, i],
                cols[t, i], flips[t, i], m64, pow2,
            )
            out[t, rows[t, i], cols[t, i]] += y


@njit(cache=True, parallel=True)
def _fused_shared_pass_kernel(
    bucket_coeffs_t, sign_coeffs_t, x, rows, cols, m, cell, base_signs
):
    m64 = np.uint64(m)
    pow2 = (m & (m - 1)) == 0
    for i in prange(x.size):
        braw = _polyval_one(bucket_coeffs_t, rows[i], x[i])
        bucket = braw & (m64 - _ONE) if pow2 else braw % m64
        sign_parity = _polyval_one(sign_coeffs_t, rows[i], x[i]) & _ONE
        parity = sign_parity ^ _parity64(bucket & np.uint64(cols[i]))
        cell[i] = rows[i] * m + cols[i]
        base_signs[i] = 1 - 2 * np.int64(parity)


@njit(cache=True, parallel=True)
def _fwht_batch_kernel(data):
    n_rows, m = data.shape
    for r in prange(n_rows):
        h = 1
        while h < m:
            for start in range(0, m, 2 * h):
                for j in range(start, start + h):
                    a = data[r, j]
                    b = data[r, j + h]
                    data[r, j] = a + b
                    data[r, j + h] = a - b
            h *= 2


@njit(cache=True)
def _scatter_int_kernel(out_flat, flat, weights):
    for i in range(flat.size):
        out_flat[flat[i]] += weights[i]


@njit(cache=True)
def _scatter_count_kernel(out_flat, flat):
    for i in range(flat.size):
        out_flat[flat[i]] += 1


@njit(cache=True)
def _scatter_float_direct_kernel(out_flat, flat, weights):
    for i in range(flat.size):
        out_flat[flat[i]] += weights[i]


@njit(cache=True)
def _bin_weights_kernel(flat, weights, binned):
    # Form per-bin sums in input order in a zeroed float64 transient —
    # NumPy's np.bincount contract.  The caller folds ``binned`` into the
    # accumulator with the reference backend's exact cast-then-add NumPy
    # expression, so float results match bit for bit even when the
    # accumulator dtype is narrower than float64.
    for i in range(flat.size):
        binned[flat[i]] += weights[i]


@njit(cache=True, parallel=True)
def _support_reports_kernel(a, b, candidates, g, reports, support):
    g64 = np.uint64(g)
    for c in prange(candidates.size):
        x = np.uint64(candidates[c])
        hits = 0
        for u in range(a.size):
            hashed = (np.uint64(a[u]) * x + np.uint64(b[u])) % _P
            if np.int64(hashed % g64) == reports[u]:
                hits += 1
        support[c] = float(hits)


@njit(cache=True, parallel=True)
def _support_counts_kernel(a, b, candidates, g, counts, support):
    g64 = np.uint64(g)
    for c in prange(candidates.size):
        x = np.uint64(candidates[c])
        acc = 0.0
        for r in range(a.size):
            hashed = (np.uint64(a[r]) * x + np.uint64(b[r])) % _P
            acc += counts[r, np.int64(hashed % g64)]
        support[c] = acc


class NumbaBackend(Backend):
    """Compiled loop kernels; selected automatically when numba imports."""

    name = "numba"

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def polyval_mersenne_rows(self, coefficients_t, rows, x):
        out = np.empty(x.shape, dtype=np.uint64)
        if x.size:
            _polyval_rows_kernel(
                np.ascontiguousarray(coefficients_t),
                np.ascontiguousarray(rows, dtype=np.int64),
                np.ascontiguousarray(x, dtype=np.uint64),
                out,
            )
        return out

    def polyval_mersenne_all(self, coefficients_t, x):
        x = np.ascontiguousarray(x, dtype=np.uint64).reshape(-1)
        out = np.empty((coefficients_t.shape[1], x.size), dtype=np.uint64)
        if out.size:
            _polyval_all_kernel(np.ascontiguousarray(coefficients_t), x, out)
        return out

    # ------------------------------------------------------------------
    # Fused encode→accumulate
    # ------------------------------------------------------------------
    def fused_encode_accumulate(
        self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, flips, m, out
    ):
        if not x.size:
            return
        args = (
            np.ascontiguousarray(bucket_coefficients_t),
            np.ascontiguousarray(sign_coefficients_t),
            np.ascontiguousarray(x, dtype=np.uint64),
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            np.ascontiguousarray(flips),
            m,
            out,
        )
        # The parallel kernel zeroes and reduces an (nthreads, k, m)
        # private histogram per call; on the chunked production path
        # (default chunk 8192 against 18k+ sketch cells) that overhead
        # dwarfs the encode work and grows with core count.  Scatter
        # serially unless the chunk amortises the private buffers.
        if x.size < numba.get_num_threads() * out.size:
            _fused_encode_accumulate_serial_kernel(*args)
        else:
            _fused_encode_accumulate_kernel(*args)

    def fused_encode_accumulate_trials(
        self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, flips, m, out
    ):
        if not x.size or not rows.shape[0]:
            return
        _fused_encode_accumulate_trials_kernel(
            np.ascontiguousarray(bucket_coefficients_t),
            np.ascontiguousarray(sign_coefficients_t),
            np.ascontiguousarray(x, dtype=np.uint64),
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            np.ascontiguousarray(flips),
            m,
            out,
        )

    def fused_encode_shared_pass(
        self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, m
    ) -> Tuple[np.ndarray, np.ndarray]:
        cell = np.empty(x.shape, dtype=np.int64)
        base_signs = np.empty(x.shape, dtype=np.int64)
        if x.size:
            _fused_shared_pass_kernel(
                np.ascontiguousarray(bucket_coefficients_t),
                np.ascontiguousarray(sign_coefficients_t),
                np.ascontiguousarray(x, dtype=np.uint64),
                np.ascontiguousarray(rows, dtype=np.int64),
                np.ascontiguousarray(cols, dtype=np.int64),
                m,
                cell,
                base_signs,
            )
        return cell, base_signs

    # ------------------------------------------------------------------
    # Transform
    # ------------------------------------------------------------------
    def fwht_batch_inplace(self, data):
        if not data.flags.c_contiguous:
            # The loop kernel needs a flat (rows, m) view; exotic layouts
            # take the reference path (identical results).
            from ..transform.hadamard import fwht_batch_inplace_numpy

            return fwht_batch_inplace_numpy(data)
        _fwht_batch_kernel(data.reshape(-1, data.shape[-1]))
        return data

    # ------------------------------------------------------------------
    # Scatter-add
    # ------------------------------------------------------------------
    def bincount_accumulate(
        self, out: np.ndarray, flat: np.ndarray, weights: Optional[np.ndarray]
    ) -> None:
        if not flat.size:
            return
        out_flat = out.reshape(-1)
        flat = np.ascontiguousarray(flat, dtype=np.int64)
        if weights is None:
            _scatter_count_kernel(out_flat, flat)
        elif np.issubdtype(out.dtype, np.integer):
            _scatter_int_kernel(
                out_flat, flat, np.ascontiguousarray(weights, dtype=out.dtype)
            )
        elif flat.size * SPARSE_RATIO < out.size:
            # Mirror the reference backend's sparse branch (element-wise
            # in-order adds straight into ``out``) so float rounding
            # matches np.add.at bit for bit.
            _scatter_float_direct_kernel(
                out_flat, flat, np.ascontiguousarray(weights, dtype=np.float64)
            )
        else:
            binned = np.zeros(out.size, dtype=np.float64)
            _bin_weights_kernel(
                flat, np.ascontiguousarray(weights, dtype=np.float64), binned
            )
            out_flat += binned.astype(out.dtype, copy=False)

    # ------------------------------------------------------------------
    # Support scans
    # ------------------------------------------------------------------
    def oracle_support_scan(
        self, a, b, candidates, g, *, reports=None, counts=None
    ) -> np.ndarray:
        if (reports is None) == (counts is None):
            raise ValueError("pass exactly one of reports (OLH) or counts (FLH)")
        support = np.zeros(candidates.size, dtype=np.float64)
        if not candidates.size or not a.size:
            return support
        cand = np.ascontiguousarray(candidates, dtype=np.int64)
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if reports is not None:
            _support_reports_kernel(
                a, b, cand, g, np.ascontiguousarray(reports, dtype=np.int64), support
            )
        else:
            _support_counts_kernel(
                a, b, cand, g,
                np.ascontiguousarray(counts, dtype=np.float64), support,
            )
        return support
