"""Pluggable compute backends for every hot-path kernel.

The sketch math of this library (k-wise Mersenne hashing, the fused
client encode→accumulate kernels, the FWHT butterfly, flattened-index
scatter-adds, frequency-oracle support scans) runs on a swappable
*compute backend* behind the narrow ABI of
:class:`~repro.backend.base.Backend`.  Two implementations ship:

* ``"numpy"`` — the vectorised reference (always available); every other
  backend is pinned bit for bit against it;
* ``"numba"`` — optional ``@njit(cache=True, parallel=True)`` loop
  kernels, used automatically when `numba` is importable.

Selection order (first match wins):

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_BACKEND`` environment variable (``numpy``, ``numba`` or
   ``auto``), read once at first resolution;
3. auto-detection: ``numba`` when importable, else ``numpy``.

The env override and auto-detection degrade *gracefully*: an unknown or
unimportable env-selected backend emits a :class:`RuntimeWarning` and
falls back to auto-detection (``numba`` when importable, else ``numpy``),
so ``REPRO_BACKEND`` can never turn a working installation into a broken
one.  Programmatic :func:`set_backend` is strict and raises
:class:`~repro.errors.BackendUnavailableError` instead — a typo in code
should fail loudly.

:func:`set_backend` selects the *process-wide* default; :func:`use_backend`
layers a :mod:`contextvars`-scoped override on top, so a pinned
:class:`~repro.api.JoinSession` ingesting in one thread never changes what
concurrent threads resolve, and nested / overlapping pins unwind correctly.
Dispatch sites call :func:`get_backend` per batch (a context-variable read
and a dict lookup — negligible against kernel work), so a selection takes
effect immediately, including for long-lived sessions.  Worker processes
of the sweep engine re-resolve the backend on entry (see
:mod:`repro.experiments.sweep`), so parent-side selections survive both
``fork`` and ``spawn`` start methods.

Adding a backend
----------------
Subclass :class:`~repro.backend.base.Backend`, implement the eight
kernels, and register a zero-argument factory::

    from repro.backend import register_backend
    register_backend("mylib", lambda: MyLibBackend())

The factory runs at first selection; letting it raise ``ImportError``
marks the backend unavailable (exactly how the numba backend gates its
optional dependency).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import warnings
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from ..errors import BackendUnavailableError
from .base import Backend

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "ENV_VAR",
    "available_backends",
    "backend_available",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted at first resolution.
ENV_VAR = "REPRO_BACKEND"

#: Anything accepted where a backend choice is expected: a registry name,
#: a live instance, or ``None`` for "the process-wide default".
BackendSpec = Union[None, str, Backend]


def _make_numpy() -> Backend:
    from .numpy_backend import NumpyBackend

    return NumpyBackend()


def _make_numba() -> Backend:
    from .numba_backend import NumbaBackend  # raises ImportError without numba

    return NumbaBackend()


#: Ordered registry: auto-detection walks it front to back (numba first,
#: numpy as the always-available fallback).
_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "numba": _make_numba,
    "numpy": _make_numpy,
}
_INSTANCES: Dict[str, Backend] = {}
#: Process-wide default, owned by :func:`set_backend` (``None`` = resolve
#: lazily from the env override / auto-detection).
_ACTIVE: Optional[Backend] = None
#: Context-local override, owned by :func:`use_backend` — scoping it to the
#: current :mod:`contextvars` context keeps one thread's temporary pin from
#: leaking into concurrently ingesting threads and makes overlapping pins
#: unwind LIFO per context instead of clobbering a shared global.
_CONTEXT: contextvars.ContextVar[Optional[Backend]] = contextvars.ContextVar(
    "repro_backend_override", default=None
)


def register_backend(
    name: str, factory: Callable[[], Backend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name`` (lowercased).

    ``factory`` is called lazily at first selection and may raise
    ``ImportError`` to signal an unavailable optional dependency.
    """
    key = str(name).strip().lower()
    if not key:
        raise BackendUnavailableError("backend name must be non-empty")
    if key in _FACTORIES and not replace:
        raise BackendUnavailableError(f"backend {key!r} is already registered")
    global _ACTIVE
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)
    # If the resolved default came from the name being re-registered,
    # drop it so the next get_backend() re-resolves through the new
    # factory — otherwise a replace=True registration would silently keep
    # dispatching to the stale instance.
    if _ACTIVE is not None and _ACTIVE.name == key:
        _ACTIVE = None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in auto-detection order."""
    return tuple(_FACTORIES)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered *and* its factory imports cleanly."""
    try:
        _instantiate(str(name).strip().lower())
        return True
    except BackendUnavailableError:
        return False


def _instantiate(key: str) -> Backend:
    """Create (and cache) the backend registered under ``key``."""
    instance = _INSTANCES.get(key)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(key)
    if factory is None:
        known = ", ".join(_FACTORIES)
        raise BackendUnavailableError(
            f"unknown backend {key!r}; registered backends: {known}"
        )
    try:
        instance = factory()
    except ImportError as exc:
        raise BackendUnavailableError(
            f"backend {key!r} is not available ({exc}); install its optional "
            f"dependency or select another backend"
        ) from exc
    _INSTANCES[key] = instance
    return instance


def _autodetect() -> Backend:
    """First importable backend in registry order (numpy always works)."""
    for key in _FACTORIES:
        try:
            return _instantiate(key)
        except BackendUnavailableError:
            continue
    raise BackendUnavailableError("no compute backend could be instantiated")


def _resolve_default() -> Backend:
    """Apply the env override, falling back gracefully to auto-detection."""
    requested = os.environ.get(ENV_VAR, "").strip().lower()
    if requested in ("", "auto"):
        return _autodetect()
    try:
        return _instantiate(requested)
    except BackendUnavailableError as exc:
        warnings.warn(
            f"{ENV_VAR}={requested!r} ignored: {exc}; falling back to "
            f"auto-detection",
            RuntimeWarning,
            stacklevel=3,
        )
        return _autodetect()


def get_backend() -> Backend:
    """The active backend: context override, else the process-wide default.

    The default is resolved on first use (env override, then
    auto-detection) and cached until :func:`set_backend` changes it.
    """
    override = _CONTEXT.get()
    if override is not None:
        return override
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve_default()
    return _ACTIVE


def set_backend(spec: BackendSpec) -> Backend:
    """Select the process-wide backend; returns the active instance.

    ``spec`` is a registry name, a live :class:`Backend`, or ``None`` to
    drop back to the default resolution (env override, then
    auto-detection).  Unknown or unimportable names raise
    :class:`~repro.errors.BackendUnavailableError`.
    """
    global _ACTIVE
    if spec is None:
        _ACTIVE = None
        return get_backend()
    _ACTIVE = resolve_backend(spec)
    return _ACTIVE


def resolve_backend(spec: BackendSpec) -> Backend:
    """Normalise ``spec`` into a live backend *without* changing the default.

    The per-call dispatch hook: ``None`` means "whatever is active",
    strings are registry lookups (strict), instances pass through.
    """
    if spec is None:
        return get_backend()
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        return _instantiate(spec.strip().lower())
    raise BackendUnavailableError(f"cannot interpret {spec!r} as a backend")


@contextlib.contextmanager
def use_backend(spec: BackendSpec) -> Iterator[Backend]:
    """Temporarily select ``spec`` within the current context.

    The override lives in a :mod:`contextvars` variable, so it is scoped
    to the current thread / async task: a pinned session ingesting under
    this manager never changes what concurrent threads resolve, and
    overlapping pins in different threads unwind independently (no
    last-exit-wins clobbering of a shared global).

    ``None`` is a no-op passthrough (yields the current backend without
    touching any state), which lets call sites thread an *optional*
    backend preference for free::

        with use_backend(self._backend):   # None when unconfigured
            ...
    """
    if spec is None:
        yield get_backend()
        return
    token = _CONTEXT.set(resolve_backend(spec))
    try:
        yield _CONTEXT.get()
    finally:
        _CONTEXT.reset(token)


def _clear_context_override() -> None:
    """Drop any context-local :func:`use_backend` override (worker entry).

    Under ``fork`` a pool worker inherits the parent's contextvar state:
    a ``use_backend`` scope active at pool-creation time would otherwise
    shadow the worker's :func:`set_backend` re-pin for the life of the
    worker.  Sweep workers call this before re-pinning.
    """
    _CONTEXT.set(None)


def _reset_for_tests() -> None:
    """Drop the resolved default so tests can re-exercise resolution."""
    global _ACTIVE
    _ACTIVE = None
    _CONTEXT.set(None)
