"""The NumPy reference backend.

This is the vectorised NumPy code the library grew up with (PR 2's fused
chunk kernels, PR 3's trial-axis variants), relocated behind the
:class:`~repro.backend.base.Backend` ABI.  Every other backend is pinned
bit for bit against this one, so the implementations here double as the
executable specification of the kernels.

The heavy lifting lives next to the data structures it belongs to —
:func:`repro.hashing.kwise.polyval_rows_numpy` for the lazy-fold Horner
evaluation, :func:`repro.transform.hadamard.fwht_batch_inplace_numpy` for
the scratch-buffered butterfly — and this module composes them into the
fused kernels plus the bincount scatter and the chunked-broadcast support
scans that used to live (twice) in :mod:`repro.mechanisms`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..hashing.kwise import (
    MERSENNE_PRIME_31,
    polyval_all_numpy,
    polyval_rows_numpy,
    reduce_mod_m,
)
from ..transform.hadamard import _popcount_parity, fwht_batch_inplace_numpy
from .base import SPARSE_RATIO, Backend

__all__ = ["NumpyBackend"]

#: Transient-table budgets of the chunked support scans (entries).
_OLH_TABLE_BUDGET = 8_388_608
_FLH_TABLE_BUDGET = 4_194_304


class NumpyBackend(Backend):
    """Pure-NumPy reference kernels (always available)."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def polyval_mersenne_rows(self, coefficients_t, rows, x):
        return polyval_rows_numpy(coefficients_t, rows, x)

    def polyval_mersenne_all(self, coefficients_t, x):
        return polyval_all_numpy(coefficients_t, x)

    # ------------------------------------------------------------------
    # Fused encode→accumulate
    # ------------------------------------------------------------------
    def _encode_ys(self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, m):
        """Shared front half: buckets, then the XOR-of-parities payload."""
        buckets = reduce_mod_m(
            polyval_rows_numpy(bucket_coefficients_t, rows, x), m
        )
        sign_parity = (
            polyval_rows_numpy(sign_coefficients_t, rows, x) & np.uint64(1)
        ).astype(np.int64)
        # The AND result is freshly allocated — donate it as fold scratch;
        # indices are < m so the parity fold is log2(m)-bit bounded.
        hadamard_parity = _popcount_parity(
            np.bitwise_and(buckets, cols), bits=max(1, int(m).bit_length() - 1),
            consume=True,
        )
        return buckets, sign_parity ^ hadamard_parity

    def fused_encode_accumulate(
        self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, flips, m, out
    ):
        _, base_parity = self._encode_ys(
            bucket_coefficients_t, sign_coefficients_t, x, rows, cols, m
        )
        # y = xi * H[h, l] * b is a product of three signs; XOR-ing their
        # parity bits computes it in integer passes without ±1 multiplies.
        ys = 1 - 2 * (base_parity ^ flips)
        flat = rows * np.int64(out.shape[1]) + cols
        self.bincount_accumulate(out, flat, ys)

    def fused_encode_accumulate_trials(
        self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, flips, m, out
    ):
        trials, c = rows.shape
        k = out.shape[1]
        # One gathered Horner pass over T * c elements: trial t's row-j
        # polynomial sits at stacked column t * k + j.
        row_offsets = (np.arange(trials, dtype=np.int64) * k)[:, None]
        x_all = np.tile(x, trials)
        idx = (row_offsets + rows).ravel()
        _, base_parity = self._encode_ys(
            bucket_coefficients_t, sign_coefficients_t, x_all, idx, cols.ravel(), m
        )
        ys = (1 - 2 * (base_parity ^ flips.ravel())).reshape(trials, c)
        # Scatter per trial: each histogram then targets one (k, m)
        # accumulator (L2-resident) instead of one T-times-larger flat
        # block — the integer sums are identical either way.
        for t in range(trials):
            flat = rows[t] * np.int64(m) + cols[t]
            self.bincount_accumulate(out[t], flat, ys[t])

    def fused_encode_shared_pass(
        self, bucket_coefficients_t, sign_coefficients_t, x, rows, cols, m
    ) -> Tuple[np.ndarray, np.ndarray]:
        _, base_parity = self._encode_ys(
            bucket_coefficients_t, sign_coefficients_t, x, rows, cols, m
        )
        cell = rows * np.int64(m) + cols
        return cell, 1 - 2 * base_parity

    # ------------------------------------------------------------------
    # Transform
    # ------------------------------------------------------------------
    def fwht_batch_inplace(self, data):
        return fwht_batch_inplace_numpy(data)

    # ------------------------------------------------------------------
    # Scatter-add
    # ------------------------------------------------------------------
    def bincount_accumulate(
        self, out: np.ndarray, flat: np.ndarray, weights: Optional[np.ndarray]
    ) -> None:
        size = out.size
        if flat.size * SPARSE_RATIO < size:
            # Small batch into a huge accumulator: the dense histogram's
            # O(size) transient dwarfs the scatter, so fall back to the
            # buffered element-wise scatter on the flat view.
            if weights is None:
                np.add.at(out.reshape(-1), flat, 1)
            elif np.issubdtype(out.dtype, np.integer):
                np.add.at(out.reshape(-1), flat, weights.astype(out.dtype, copy=False))
            else:
                np.add.at(
                    out.reshape(-1), flat, np.asarray(weights, dtype=np.float64)
                )
            return
        if weights is None:
            binned = np.bincount(flat, minlength=size)
        else:
            # The float64 intermediate is exact for the ±1 unit payloads
            # of the sketch hot path: every partial sum is an integer of
            # magnitude at most len(weights) < 2**53.
            binned = np.bincount(
                flat, weights=np.asarray(weights, dtype=np.float64), minlength=size
            )
        out += binned.reshape(out.shape).astype(out.dtype, copy=False)

    # ------------------------------------------------------------------
    # Support scans
    # ------------------------------------------------------------------
    def oracle_support_scan(
        self, a, b, candidates, g, *, reports=None, counts=None
    ) -> np.ndarray:
        if (reports is None) == (counts is None):
            raise ValueError("pass exactly one of reports (OLH) or counts (FLH)")
        prime = np.uint64(MERSENNE_PRIME_31)
        g64 = np.uint64(g)
        cand = candidates.astype(np.uint64)[None, :]
        support = np.zeros(candidates.size, dtype=np.float64)
        if not candidates.size:
            return support
        if reports is not None:
            # All candidates against all per-user hash parameters, one
            # broadcast per user chunk; the chunking bounds the transient
            # (users, candidates) table.
            user_chunk = max(1, _OLH_TABLE_BUDGET // candidates.size)
            for start in range(0, a.size, user_chunk):
                sl = slice(start, start + user_chunk)
                hashed = (
                    (a[sl].astype(np.uint64)[:, None] * cand
                     + b[sl].astype(np.uint64)[:, None]) % prime
                ) % g64
                support += np.count_nonzero(
                    hashed.astype(np.int64) == reports[sl][:, None], axis=0
                )
            return support
        # FLH: iterate the pool in slices so the (pool, candidates) hash
        # table stays bounded regardless of domain size.
        pool_chunk = max(1, _FLH_TABLE_BUDGET // candidates.size)
        for start in range(0, a.size, pool_chunk):
            stop = min(start + pool_chunk, a.size)
            table = (
                (a[start:stop].astype(np.uint64)[:, None] * cand
                 + b[start:stop].astype(np.uint64)[:, None]) % prime
            ) % g64
            rows = np.arange(start, stop, dtype=np.int64)[:, None]
            support += np.sum(counts[rows, table.astype(np.int64)], axis=0)
        return support
