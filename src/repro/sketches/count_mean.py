"""The Count-Mean Sketch (the server structure of Apple's CMS / HCMS).

Apple's "Learning with Privacy at Scale" aggregates randomized one-hot
client reports into a ``(k, m)`` count array and answers point queries with
the *debiased mean* over rows

.. math::

    \\hat f(d) = \\frac{m}{m - 1}\\Big(\\tfrac1k \\sum_j M[j, h_j(d)]
                 - \\tfrac{n}{m}\\Big),

which corrects the expected ``n/m`` collision mass per bucket.  This module
implements the **non-private** structure (plain updates); the LDP client
channel on top of it lives in :mod:`repro.mechanisms.hcms`, which reuses the
read-out implemented here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ParameterError
from ..hashing import HashPairs
from ..rng import RandomState
from .base import LinearSketch

__all__ = ["CountMeanSketch", "count_mean_frequencies"]


def count_mean_frequencies(
    counts: np.ndarray,
    pairs: HashPairs,
    total: float,
    values: np.ndarray,
) -> np.ndarray:
    """Debiased Count-Mean point estimates for ``values``.

    Shared by the non-private :class:`CountMeanSketch` and the LDP
    Apple-HCMS server: both hold a ``(k, m)`` count array whose rows have
    expected bucket load ``total / m`` under no signal.
    """
    m = pairs.m
    if m < 2:
        raise ParameterError("count-mean read-out requires m >= 2")
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    buckets = pairs.bucket_all(arr)
    rows = np.arange(pairs.k, dtype=np.int64)[:, None]
    mean_counts = np.mean(counts[rows, buckets], axis=0)
    return (m / (m - 1.0)) * (mean_counts - total / m)


class CountMeanSketch(LinearSketch):
    """Non-private Count-Mean Sketch over integer ids."""

    @classmethod
    def create(cls, k: int, m: int, seed: RandomState = None) -> "CountMeanSketch":
        """Convenience constructor drawing fresh hash pairs."""
        return cls(HashPairs(k, m, seed))

    def update_batch(self, values: Iterable[int], weight: float = 1.0) -> None:
        """Fold ``values`` into every row (unsigned one-hot updates)."""
        arr = self._coerce(values)
        if arr.size == 0:
            return
        buckets = self.pairs.bucket_all(arr)
        rows = np.repeat(np.arange(self.k, dtype=np.int64), arr.size)
        self._scatter_add(rows, buckets.ravel(), np.full(arr.size * self.k, weight))
        self.total_weight += weight * arr.size

    def frequency(self, value: int) -> float:
        """Debiased mean point estimate (can be negative)."""
        return float(self.frequencies(np.asarray([value], dtype=np.int64))[0])

    def frequencies(self, values: Iterable[int]) -> np.ndarray:
        """Vectorised :meth:`frequency`."""
        arr = self._coerce(values)
        return count_mean_frequencies(self.counts, self.pairs, self.total_weight, arr)
