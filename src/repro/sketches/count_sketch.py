"""The Count-Sketch (Charikar, Chen, Farach-Colton).

Structurally identical to Fast-AGMS — signed bucket counts with per-row
``(h_j, xi_j)`` pairs — but read out purely as a *frequency* summary:
``median_j M[j, h_j(d)] * xi_j(d)``, an unbiased two-sided point estimate.
Kept as a distinct class because the experiments use it as an independent
frequency-estimation reference and because its read-out (median of signed
counters) differs from Count-Min's (min of unsigned counters).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..hashing import HashPairs
from ..rng import RandomState
from .base import LinearSketch

__all__ = ["CountSketch"]


class CountSketch(LinearSketch):
    """Count-Sketch over integer ids."""

    @classmethod
    def create(cls, k: int, m: int, seed: RandomState = None) -> "CountSketch":
        """Convenience constructor drawing fresh hash pairs."""
        return cls(HashPairs(k, m, seed))

    def update_batch(self, values: Iterable[int], weight: float = 1.0) -> None:
        """Fold ``values`` into every row with their signs."""
        arr = self._coerce(values)
        if arr.size == 0:
            return
        buckets = self.pairs.bucket_all(arr)
        signs = self.pairs.sign_all(arr)
        rows = np.repeat(np.arange(self.k, dtype=np.int64), arr.size)
        self._scatter_add(rows, buckets.ravel(), weight * signs.ravel().astype(np.float64))
        self.total_weight += weight * arr.size

    def frequency(self, value: int) -> float:
        """Unbiased point estimate ``median_j M[j, h_j(d)] xi_j(d)``."""
        return float(self.frequencies(np.asarray([value], dtype=np.int64))[0])

    def frequencies(self, values: Iterable[int]) -> np.ndarray:
        """Vectorised :meth:`frequency`."""
        arr = self._coerce(values)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets = self.pairs.bucket_all(arr)
        signs = self.pairs.sign_all(arr)
        rows = np.arange(self.k, dtype=np.int64)[:, None]
        return np.median(self.counts[rows, buckets] * signs, axis=0)

    def heavy_hitters(self, domain_size: int, threshold: float) -> Tuple[np.ndarray, np.ndarray]:
        """Values whose estimate exceeds ``threshold`` plus their estimates."""
        candidates = np.arange(domain_size, dtype=np.int64)
        estimates = self.frequencies(candidates)
        mask = estimates > threshold
        return candidates[mask], estimates[mask]
