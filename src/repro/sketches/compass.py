"""COMPASS-style multiway chain-join sketches (non-private baseline).

COMPASS (Izenov et al., SIGMOD 2021) estimates chain joins such as
``T1(A) join T2(A, B) join T3(B)`` with Fast-AGMS sketches: end tables keep
ordinary ``(k, m)`` sketches over their single join attribute; a middle
table with join attributes ``(A, B)`` keeps, per replica ``j``, an
``(m_A, m_B)`` matrix updated as

.. math::  M_2[h_A(a), h_B(b)] \\mathrel{+}= \\xi_A(a)\\,\\xi_B(b)

for each tuple ``(a, b)``.  The chain-join estimate of replica ``j`` is the
vector/matrix chain product

.. math::  \\sum_{l_1, l_2} M_1[l_1]\\, M_2[l_1, l_2]\\, M_3[l_2]

and the final estimate is the median over the ``k`` replicas.  Section VI
of the paper privatises exactly this construction; this module is the
non-private "Compass" baseline of Fig. 15.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..accumulate import scatter_add
from ..errors import IncompatibleSketchError, ParameterError
from ..hashing import HashPairs
from ..rng import RandomState, ensure_rng, spawn
from ..validation import as_value_array, require_positive_int
from .fast_agms import FastAGMSSketch

__all__ = ["CompassMiddleSketch", "CompassChainSketches"]


class CompassMiddleSketch:
    """Per-replica ``(m_left, m_right)`` matrices for a two-attribute table."""

    def __init__(self, left_pairs: HashPairs, right_pairs: HashPairs) -> None:
        if left_pairs.k != right_pairs.k:
            raise ParameterError(
                f"left and right hash pairs must share k, got {left_pairs.k} vs {right_pairs.k}"
            )
        self.left_pairs = left_pairs
        self.right_pairs = right_pairs
        self.counts = np.zeros((left_pairs.k, left_pairs.m, right_pairs.m), dtype=np.float64)
        self.total_weight = 0.0

    @property
    def k(self) -> int:
        """Number of replicas."""
        return self.left_pairs.k

    def update_batch(
        self,
        left_values: Iterable[int],
        right_values: Iterable[int],
        weight: float = 1.0,
    ) -> None:
        """Fold the two-column tuples into every replica."""
        left = as_value_array(left_values, "left_values")
        right = as_value_array(right_values, "right_values")
        if left.shape != right.shape:
            raise ParameterError("left and right columns must have equal length")
        if left.size == 0:
            return
        # One batched hash evaluation and one bincount pass cover every
        # replica: flatten (replica, row, col) into the 3-D counter
        # tensor.  Tuples are processed in slices so the (k, chunk)
        # intermediates stay a few MB regardless of the table size.
        chunk = max(1, 262_144 // self.k)
        for start in range(0, left.size, chunk):
            sl = slice(start, start + chunk)
            lslice, rslice = left[sl], right[sl]
            rows = self.left_pairs.bucket_all(lslice)       # (k, c)
            cols = self.right_pairs.bucket_all(rslice)      # (k, c)
            signs = self.left_pairs.sign_all(lslice) * self.right_pairs.sign_all(rslice)
            replicas = np.repeat(np.arange(self.k, dtype=np.int64), lslice.size)
            scatter_add(
                self.counts,
                (replicas, rows.ravel(), cols.ravel()),
                weight * signs.ravel().astype(np.float64),
            )
        self.total_weight += weight * left.size

    def memory_bytes(self) -> int:
        """Size of the counter tensor in bytes."""
        return int(self.counts.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompassMiddleSketch(k={self.k}, shape=({self.left_pairs.m}, "
            f"{self.right_pairs.m}), total_weight={self.total_weight:g})"
        )


class CompassChainSketches:
    """Factory + estimator for a whole chain join.

    Holds one :class:`HashPairs` per join attribute (``X0 .. X_{n-2}``); the
    sketches it creates all share those pairs, which is what makes the chain
    product meaningful.

    Parameters
    ----------
    attribute_widths:
        ``m`` for each join attribute.
    k:
        Number of replicas (shared across attributes).
    seed:
        Master seed for the hash pairs.
    """

    def __init__(
        self,
        attribute_widths: Sequence[int],
        k: int,
        seed: RandomState = None,
    ) -> None:
        if not attribute_widths:
            raise ParameterError("need at least one join attribute")
        k = require_positive_int("k", k)
        rng = ensure_rng(seed)
        self.attribute_pairs: List[HashPairs] = [
            HashPairs(k, require_positive_int("m", m), spawn(rng)) for m in attribute_widths
        ]

    @property
    def k(self) -> int:
        """Number of replicas."""
        return self.attribute_pairs[0].k

    @property
    def num_attributes(self) -> int:
        """Number of join attributes in the chain."""
        return len(self.attribute_pairs)

    # ------------------------------------------------------------------
    # Sketch builders
    # ------------------------------------------------------------------
    def build_end(self, attribute: int, values: Iterable[int]) -> FastAGMSSketch:
        """Sketch a single-attribute end table over join attribute ``attribute``."""
        pairs = self._pairs(attribute)
        sketch = FastAGMSSketch(pairs)
        sketch.update_batch(values)
        return sketch

    def build_middle(
        self,
        left_attribute: int,
        left_values: Iterable[int],
        right_values: Iterable[int],
    ) -> CompassMiddleSketch:
        """Sketch a two-attribute middle table joining on ``left_attribute``
        and ``left_attribute + 1``."""
        left_pairs = self._pairs(left_attribute)
        right_pairs = self._pairs(left_attribute + 1)
        sketch = CompassMiddleSketch(left_pairs, right_pairs)
        sketch.update_batch(left_values, right_values)
        return sketch

    def build_cycle_table(
        self,
        index: int,
        left_values: Iterable[int],
        right_values: Iterable[int],
    ) -> CompassMiddleSketch:
        """Sketch table ``index`` of a cycle join.

        In a cycle over ``n`` attributes, table ``i`` joins attribute ``i``
        with attribute ``(i + 1) mod n`` — the wrap-around closes the ring.
        """
        left_pairs = self._pairs(index)
        right_pairs = self._pairs((index + 1) % self.num_attributes)
        sketch = CompassMiddleSketch(left_pairs, right_pairs)
        sketch.update_batch(left_values, right_values)
        return sketch

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_chain(
        self,
        first: FastAGMSSketch,
        middles: Sequence[CompassMiddleSketch],
        last: FastAGMSSketch,
    ) -> float:
        """Median over replicas of the chain product estimate."""
        if len(middles) != self.num_attributes - 1:
            raise IncompatibleSketchError(
                f"chain over {self.num_attributes} attributes needs "
                f"{self.num_attributes - 1} middle sketches, got {len(middles)}"
            )
        if first.pairs != self.attribute_pairs[0]:
            raise IncompatibleSketchError("first end sketch does not use attribute 0 hash pairs")
        if last.pairs != self.attribute_pairs[-1]:
            raise IncompatibleSketchError("last end sketch does not use the final attribute hash pairs")
        for idx, mid in enumerate(middles):
            if mid.left_pairs != self.attribute_pairs[idx] or mid.right_pairs != self.attribute_pairs[idx + 1]:
                raise IncompatibleSketchError(f"middle sketch {idx} does not match the chain hash pairs")

        estimates = np.empty(self.k, dtype=np.float64)
        for j in range(self.k):
            acc = first.counts[j]
            for mid in middles:
                acc = acc @ mid.counts[j]
            estimates[j] = float(acc @ last.counts[j])
        return float(np.median(estimates))

    def estimate_cycle(self, tables: Sequence[CompassMiddleSketch]) -> float:
        """Median over replicas of the cycle-product trace.

        ``tables[i]`` must join attribute ``i`` with ``(i + 1) mod n`` (see
        :meth:`build_cycle_table`); the estimate of replica ``j`` is
        ``trace(M_0[j] @ M_1[j] @ ... @ M_{n-1}[j])`` — the "uncomplicated
        cyclic joins" of the paper's Section VI discussion.
        """
        if len(tables) != self.num_attributes:
            raise IncompatibleSketchError(
                f"a cycle over {self.num_attributes} attributes needs "
                f"{self.num_attributes} tables, got {len(tables)}"
            )
        for idx, sketch in enumerate(tables):
            expected_left = self.attribute_pairs[idx]
            expected_right = self.attribute_pairs[(idx + 1) % self.num_attributes]
            if sketch.left_pairs != expected_left or sketch.right_pairs != expected_right:
                raise IncompatibleSketchError(
                    f"cycle table {idx} does not match the ring hash pairs"
                )
        estimates = np.empty(self.k, dtype=np.float64)
        for j in range(self.k):
            acc = tables[0].counts[j]
            for sketch in tables[1:]:
                acc = acc @ sketch.counts[j]
            estimates[j] = float(np.trace(acc))
        return float(np.median(estimates))

    def _pairs(self, attribute: int) -> HashPairs:
        if not 0 <= attribute < self.num_attributes:
            raise ParameterError(
                f"attribute must lie in [0, {self.num_attributes}), got {attribute}"
            )
        return self.attribute_pairs[attribute]
