"""The Count-Min sketch (Cormode & Muthukrishnan).

Maintains ``M[j, h_j(d)] += w`` per row and answers point queries with
``min_j M[j, h_j(d)]`` — a one-sided (over-estimating) frequency summary.
It is not used by the paper's estimators directly, but it is the natural
non-signed sibling of Count-Sketch/Fast-AGMS, it underlies Apple's CMS
(:mod:`repro.sketches.count_mean` adds the mean debiasing), and it gives
the test-suite an independent reference for heavy-hitter extraction.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..hashing import HashPairs
from ..rng import RandomState
from .base import LinearSketch

__all__ = ["CountMinSketch"]


class CountMinSketch(LinearSketch):
    """Count-Min sketch over integer ids (signs unused)."""

    @classmethod
    def create(cls, k: int, m: int, seed: RandomState = None) -> "CountMinSketch":
        """Convenience constructor drawing fresh hash pairs."""
        return cls(HashPairs(k, m, seed))

    def update_batch(self, values: Iterable[int], weight: float = 1.0) -> None:
        """Fold ``values`` into every row."""
        arr = self._coerce(values)
        if arr.size == 0:
            return
        buckets = self.pairs.bucket_all(arr)
        rows = np.repeat(np.arange(self.k, dtype=np.int64), arr.size)
        self._scatter_add(rows, buckets.ravel(), np.full(arr.size * self.k, weight))
        self.total_weight += weight * arr.size

    def frequency(self, value: int) -> float:
        """Point estimate ``min_j M[j, h_j(d)]`` (never under-estimates)."""
        return float(self.frequencies(np.asarray([value], dtype=np.int64))[0])

    def frequencies(self, values: Iterable[int]) -> np.ndarray:
        """Vectorised :meth:`frequency`."""
        arr = self._coerce(values)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets = self.pairs.bucket_all(arr)
        rows = np.arange(self.k, dtype=np.int64)[:, None]
        return np.min(self.counts[rows, buckets], axis=0)

    def heavy_hitters(self, domain_size: int, threshold: float) -> np.ndarray:
        """All values of ``[0, domain_size)`` whose estimate exceeds ``threshold``."""
        candidates = np.arange(domain_size, dtype=np.int64)
        estimates = self.frequencies(candidates)
        return candidates[estimates > threshold]
