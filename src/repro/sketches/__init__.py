"""Non-private sketch substrates.

These are the classical streaming summaries the paper builds on or compares
against:

* :class:`AGMSSketch` — the original tug-of-war sketch (Alon et al.);
* :class:`FastAGMSSketch` — the Fast-AGMS sketch (Cormode & Garofalakis),
  the non-private "FAGMS" baseline of the experiments and the structure
  LDPJoinSketch privatises;
* :class:`CountMinSketch` and :class:`CountSketch` — standard frequency
  summaries, used for comparison and by tests;
* :class:`CountMeanSketch` — the server-side structure of Apple's CMS/HCMS;
* :class:`CompassChainSketches` — COMPASS-style multiway chain-join
  sketches (Section VI baseline).
"""

from .base import LinearSketch
from .agms import AGMSSketch
from .fast_agms import FastAGMSSketch
from .count_min import CountMinSketch
from .count_sketch import CountSketch
from .count_mean import CountMeanSketch
from .compass import CompassChainSketches, CompassMiddleSketch

__all__ = [
    "LinearSketch",
    "AGMSSketch",
    "FastAGMSSketch",
    "CountMinSketch",
    "CountSketch",
    "CountMeanSketch",
    "CompassChainSketches",
    "CompassMiddleSketch",
]
