"""Common behaviour of the array-shaped linear sketches.

All the classical sketches in this package share a ``(k, m)`` counter array
and the *linearity* property: the sketch of the concatenation of two
streams is the element-wise sum of the two sketches.  :class:`LinearSketch`
hosts that shared plumbing — counter storage, batched updates via
flattened-index bincount accumulation, merging, and compatibility checks —
while subclasses define how a value maps to (row, bucket, weight) triples
and how estimates are read out.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from ..accumulate import scatter_add
from ..errors import IncompatibleSketchError, ParameterError
from ..hashing import HashPairs
from ..validation import as_value_array

__all__ = ["LinearSketch"]


class LinearSketch(abc.ABC):
    """Base class for ``(k, m)``-shaped linear sketches over integer ids."""

    def __init__(self, pairs: HashPairs) -> None:
        if not isinstance(pairs, HashPairs):
            raise ParameterError(f"pairs must be HashPairs, got {type(pairs).__name__}")
        self.pairs = pairs
        self.counts = np.zeros((pairs.k, pairs.m), dtype=np.float64)
        self.total_weight = 0.0

    # ------------------------------------------------------------------
    # Shape / compatibility
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of rows (independent estimators)."""
        return self.pairs.k

    @property
    def m(self) -> int:
        """Number of buckets per row."""
        return self.pairs.m

    def check_compatible(self, other: "LinearSketch") -> None:
        """Raise unless ``other`` shares this sketch's type and hash pairs."""
        if type(other) is not type(self):
            raise IncompatibleSketchError(
                f"cannot combine {type(self).__name__} with {type(other).__name__}"
            )
        if self.pairs != other.pairs:
            raise IncompatibleSketchError(
                "sketches use different hash pairs; build both from the same HashPairs"
            )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def update_batch(self, values: Iterable[int], weight: float = 1.0) -> None:
        """Fold a batch of values into the sketch."""

    def update(self, value: int, weight: float = 1.0) -> None:
        """Fold a single value into the sketch."""
        self.update_batch(np.asarray([value], dtype=np.int64), weight)

    def merge(self, other: "LinearSketch") -> "LinearSketch":
        """Add ``other``'s counters into this sketch (linearity). Returns self."""
        self.check_compatible(other)
        self.counts += other.counts
        self.total_weight += other.total_weight
        return self

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _coerce(self, values: Iterable[int]) -> np.ndarray:
        return as_value_array(values)

    def _scatter_add(self, rows: np.ndarray, buckets: np.ndarray, weights: np.ndarray) -> None:
        scatter_add(self.counts, (rows, buckets), weights)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Size of the counter array in bytes (space-cost accounting)."""
        return int(self.counts.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(k={self.k}, m={self.m}, "
            f"total_weight={self.total_weight:g})"
        )
