"""The Fast-AGMS sketch (Cormode & Garofalakis, VLDB 2005).

A Fast-AGMS sketch ``M`` of shape ``(k, m)`` maintains, for every row
``j``, the signed bucket counts

.. math::  M[j, h_j(d)] \\mathrel{+}= \\xi_j(d)

for each stream value ``d``.  Compared to the original AGMS sketch, each
update touches one counter per row instead of every counter, hence "fast".

Estimates supported here (all used by the paper):

* **join size** (Eq. 1): ``median_j sum_x MA[j, x] * MB[j, x]`` for two
  sketches built with the *same* hash pairs;
* **frequency**: ``median_j M[j, h_j(d)] * xi_j(d)`` (the Count-Sketch
  estimator — Fast-AGMS and Count-Sketch share their structure);
* **second moment** ``F2``: the self-join estimate.

This class is the non-private **FAGMS** baseline of the experiments and
the structure that :mod:`repro.core` privatises.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..hashing import HashPairs
from ..rng import RandomState
from .base import LinearSketch

__all__ = ["FastAGMSSketch"]


class FastAGMSSketch(LinearSketch):
    """Fast-AGMS sketch over integer ids.

    Parameters
    ----------
    pairs:
        The per-row hash pairs.  Two sketches that will be joined must be
        constructed from the *same* :class:`HashPairs` object.
    """

    def __init__(self, pairs: HashPairs) -> None:
        super().__init__(pairs)

    @classmethod
    def create(cls, k: int, m: int, seed: RandomState = None) -> "FastAGMSSketch":
        """Convenience constructor drawing fresh hash pairs."""
        return cls(HashPairs(k, m, seed))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_batch(self, values: Iterable[int], weight: float = 1.0) -> None:
        """Fold ``values`` into every row of the sketch."""
        arr = self._coerce(values)
        if arr.size == 0:
            return
        buckets = self.pairs.bucket_all(arr)          # (k, n)
        signs = self.pairs.sign_all(arr)              # (k, n)
        rows = np.repeat(np.arange(self.k, dtype=np.int64), arr.size)
        self._scatter_add(rows, buckets.ravel(), weight * signs.ravel().astype(np.float64))
        self.total_weight += weight * arr.size

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def inner_product(self, other: "FastAGMSSketch") -> float:
        """Eq. (1): median over rows of the row-wise inner products."""
        self.check_compatible(other)
        per_row = np.einsum("jx,jx->j", self.counts, other.counts)
        return float(np.median(per_row))

    def second_moment(self) -> float:
        """Self-join size estimate (``F2``)."""
        per_row = np.einsum("jx,jx->j", self.counts, self.counts)
        return float(np.median(per_row))

    def frequency(self, value: int) -> float:
        """Count-Sketch point estimate ``median_j M[j, h_j(d)] xi_j(d)``."""
        estimates = self.frequencies(np.asarray([value], dtype=np.int64))
        return float(estimates[0])

    def frequencies(self, values: Iterable[int]) -> np.ndarray:
        """Vectorised :meth:`frequency` for a batch of values."""
        arr = self._coerce(values)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets = self.pairs.bucket_all(arr)          # (k, n)
        signs = self.pairs.sign_all(arr)              # (k, n)
        rows = np.arange(self.k, dtype=np.int64)[:, None]
        picked = self.counts[rows, buckets] * signs
        return np.median(picked, axis=0)
