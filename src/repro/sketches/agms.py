"""The original AGMS ("tug-of-war") sketch (Alon, Gibbons, Matias, Szegedy).

An AGMS sketch keeps ``k * m`` independent atomic counters; counter
``(j, x)`` maintains ``sum_d f(d) * xi_{j,x}(d)`` for its own four-wise
independent sign hash ``xi_{j,x}``.  Every update touches **every** counter
— this is the per-update cost Fast-AGMS was invented to avoid, and keeping
both implementations lets tests and ablation benches quantify exactly that
trade-off.

Estimates:

* ``F2`` / self-join: mean over the ``m`` counters of a row of the squared
  counter, median over the ``k`` rows;
* join size: mean over the row of products of corresponding counters,
  median over rows (two sketches must share their sign hashes).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..errors import IncompatibleSketchError, ParameterError
from ..hashing.sign import SignHash
from ..rng import RandomState, ensure_rng, spawn_many
from ..validation import as_value_array, require_positive_int

__all__ = ["AGMSSketch"]


class AGMSSketch:
    """Tug-of-war sketch with ``k`` rows of ``m`` atomic counters each."""

    def __init__(self, sign_hashes: List[List[SignHash]]) -> None:
        if not sign_hashes or not sign_hashes[0]:
            raise ParameterError("sign_hashes must be a non-empty (k, m) grid")
        width = len(sign_hashes[0])
        if any(len(row) != width for row in sign_hashes):
            raise ParameterError("sign_hashes rows must have equal length")
        self.sign_hashes = sign_hashes
        self.k = len(sign_hashes)
        self.m = width
        self.counts = np.zeros((self.k, self.m), dtype=np.float64)
        self.total_weight = 0.0

    @classmethod
    def create(cls, k: int, m: int, seed: RandomState = None) -> "AGMSSketch":
        """Draw a fresh ``(k, m)`` grid of independent sign hashes."""
        k = require_positive_int("k", k)
        m = require_positive_int("m", m)
        rng = ensure_rng(seed)
        children = spawn_many(rng, k * m)
        grid = [[SignHash(seed=children[j * m + x]) for x in range(m)] for j in range(k)]
        return cls(grid)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_batch(self, values: Iterable[int], weight: float = 1.0) -> None:
        """Fold ``values`` into all ``k * m`` counters."""
        arr = as_value_array(values)
        if arr.size == 0:
            return
        for j in range(self.k):
            for x in range(self.m):
                self.counts[j, x] += weight * float(np.sum(self.sign_hashes[j][x](arr)))
        self.total_weight += weight * arr.size

    def update(self, value: int, weight: float = 1.0) -> None:
        """Fold a single value into the sketch."""
        self.update_batch(np.asarray([value], dtype=np.int64), weight)

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "AGMSSketch") -> None:
        if not isinstance(other, AGMSSketch):
            raise IncompatibleSketchError(f"cannot combine AGMSSketch with {type(other).__name__}")
        if self.k != other.k or self.m != other.m:
            raise IncompatibleSketchError(
                f"shape mismatch: ({self.k}, {self.m}) vs ({other.k}, {other.m})"
            )
        if self.sign_hashes is not other.sign_hashes and self.sign_hashes != other.sign_hashes:
            raise IncompatibleSketchError("AGMS sketches must share their sign hashes")

    def inner_product(self, other: "AGMSSketch") -> float:
        """Join-size estimate: row means of counter products, median of rows."""
        self._check_compatible(other)
        per_row = np.mean(self.counts * other.counts, axis=1)
        return float(np.median(per_row))

    def second_moment(self) -> float:
        """``F2`` estimate: row means of squared counters, median of rows."""
        per_row = np.mean(self.counts**2, axis=1)
        return float(np.median(per_row))

    def memory_bytes(self) -> int:
        """Size of the counter array in bytes."""
        return int(self.counts.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AGMSSketch(k={self.k}, m={self.m}, total_weight={self.total_weight:g})"
