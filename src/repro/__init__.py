"""repro — Sketches-based join size estimation under local differential privacy.

A from-scratch, laptop-scale reproduction of *"Sketches-based join size
estimation under local differential privacy"* (Zhang, Liu, Yin — ICDE
2024), grown around one idea the paper makes precise: a single private
sketch answers join-size, frequency and multiway queries.  The package
serves them through one interface:

* the **unified API** (:mod:`repro.api`) — the estimator registry
  (:func:`get_estimator` / :func:`available_estimators` over
  LDPJoinSketch, LDPJoinSketch+/FAP, LDP-COMPASS, FAGMS and the k-RR /
  OLH / FLH / Apple-HCMS baselines), the streaming shardable
  :class:`JoinSession`, and the single frozen :class:`EstimateResult`
  every query returns;
* the paper's contributions (:mod:`repro.core`) —
  :class:`~repro.core.LDPJoinSketch` / :func:`~repro.core.build_sketch`
  (Algorithms 1-2), Frequency-Aware Perturbation (Algorithm 4),
  :class:`~repro.core.LDPJoinSketchPlus` (Algorithms 3 and 5), and the
  Section VI multiway extension (:class:`~repro.core.LDPCompassProtocol`);
* every substrate they stand on — Hadamard transforms, k-wise independent
  hashing, the classical AGMS / Fast-AGMS / Count-Min / Count-Sketch /
  Count-Mean sketches and COMPASS chain sketches;
* the competitor LDP frequency oracles of the evaluation, with mergeable
  (shardable) server-side state, under one interface
  (:mod:`repro.mechanisms`);
* synthetic workload generators matching the paper's datasets
  (:mod:`repro.data`) and the experiment harness regenerating every table
  and figure through the registry (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import JoinSession, SketchParams

    rng = np.random.default_rng(7)
    session = JoinSession(SketchParams(k=18, m=1024, epsilon=4.0), seed=7)
    session.collect("A", rng.integers(0, 4096, size=100_000))
    session.collect("B", rng.integers(0, 4096, size=100_000))
    print(session.estimate().estimate)

or, by registry name::

    from repro.api import get_estimator
    from repro.data import ZipfGenerator

    instance = ZipfGenerator(4096, alpha=1.4).make_join_instance(100_000, rng=1)
    result = get_estimator("ldpjs+").estimate(instance, epsilon=4.0, seed=7)
    print(result.estimate, result.uplink_bits)
"""

from ._version import __version__
from .errors import (
    BackendUnavailableError,
    DataGenerationError,
    DomainError,
    IncompatibleSketchError,
    ParameterError,
    ProtocolError,
    ReproError,
    UnknownEstimatorError,
)
from .backend import (
    Backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from .api import (
    EstimateResult,
    JoinSession,
    available_estimators,
    get_estimator,
    register,
)
from .core import (
    JoinEstimate,
    LDPCompassProtocol,
    LDPJoinSketch,
    LDPJoinSketchPlus,
    PlusEstimate,
    ReportBatch,
    SketchParams,
    build_sketch,
    encode_report,
    encode_reports,
    encode_reports_into,
    estimate_join_size,
    fap_encode_report,
    fap_encode_reports,
    find_frequent_items,
    run_ldp_join_sketch,
    run_ldp_join_sketch_plus,
)
from .join import FrequencyVector, exact_join_size, exact_multiway_chain_size

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ParameterError",
    "DomainError",
    "IncompatibleSketchError",
    "ProtocolError",
    "DataGenerationError",
    "UnknownEstimatorError",
    "BackendUnavailableError",
    # compute backends
    "Backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    # unified API
    "EstimateResult",
    "JoinSession",
    "get_estimator",
    "available_estimators",
    "register",
    # core protocol
    "SketchParams",
    "ReportBatch",
    "encode_report",
    "encode_reports",
    "encode_reports_into",
    "LDPJoinSketch",
    "build_sketch",
    "estimate_join_size",
    "find_frequent_items",
    "fap_encode_report",
    "fap_encode_reports",
    "LDPJoinSketchPlus",
    "PlusEstimate",
    "LDPCompassProtocol",
    "JoinEstimate",
    "run_ldp_join_sketch",
    "run_ldp_join_sketch_plus",
    # ground truth
    "FrequencyVector",
    "exact_join_size",
    "exact_multiway_chain_size",
]
