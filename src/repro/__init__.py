"""repro — Sketches-based join size estimation under local differential privacy.

A from-scratch, laptop-scale reproduction of *"Sketches-based join size
estimation under local differential privacy"* (Zhang, Liu, Yin — ICDE
2024).  The package provides:

* the paper's contributions — :class:`~repro.core.LDPJoinSketch` /
  :func:`~repro.core.build_sketch` (Algorithms 1-2),
  Frequency-Aware Perturbation (Algorithm 4),
  :class:`~repro.core.LDPJoinSketchPlus` (Algorithms 3 and 5), and the
  Section VI multiway extension (:class:`~repro.core.LDPCompassProtocol`);
* every substrate they stand on — Hadamard transforms, k-wise independent
  hashing, the classical AGMS / Fast-AGMS / Count-Min / Count-Sketch /
  Count-Mean sketches and COMPASS chain sketches;
* the competitor LDP frequency oracles of the evaluation — k-RR, OLH,
  FLH, Apple-HCMS — under one interface (:mod:`repro.mechanisms`);
* synthetic workload generators matching the paper's datasets
  (:mod:`repro.data`) and the experiment harness regenerating every table
  and figure (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import SketchParams, run_ldp_join_sketch

    rng = np.random.default_rng(7)
    a = rng.integers(0, 4096, size=100_000)
    b = rng.integers(0, 4096, size=100_000)
    result = run_ldp_join_sketch(a, b, SketchParams(k=18, m=1024, epsilon=4.0), seed=7)
    print(result.estimate)
"""

from ._version import __version__
from .errors import (
    DataGenerationError,
    DomainError,
    IncompatibleSketchError,
    ParameterError,
    ProtocolError,
    ReproError,
)
from .core import (
    JoinEstimate,
    LDPCompassProtocol,
    LDPJoinSketch,
    LDPJoinSketchPlus,
    PlusEstimate,
    ReportBatch,
    SketchParams,
    build_sketch,
    encode_report,
    encode_reports,
    estimate_join_size,
    fap_encode_report,
    fap_encode_reports,
    find_frequent_items,
    run_ldp_join_sketch,
    run_ldp_join_sketch_plus,
)
from .join import FrequencyVector, exact_join_size, exact_multiway_chain_size

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ParameterError",
    "DomainError",
    "IncompatibleSketchError",
    "ProtocolError",
    "DataGenerationError",
    # core protocol
    "SketchParams",
    "ReportBatch",
    "encode_report",
    "encode_reports",
    "LDPJoinSketch",
    "build_sketch",
    "estimate_join_size",
    "find_frequent_items",
    "fap_encode_report",
    "fap_encode_reports",
    "LDPJoinSketchPlus",
    "PlusEstimate",
    "LDPCompassProtocol",
    "JoinEstimate",
    "run_ldp_join_sketch",
    "run_ldp_join_sketch_plus",
    # ground truth
    "FrequencyVector",
    "exact_join_size",
    "exact_multiway_chain_size",
]
