"""The mergeable wire format shards ship to the merge tree.

A :class:`PartialAggregate` is the *pre-finalisation* state of one shard
aggregator: raw integer accumulators (pre-FWHT sketch counters, oracle
count tables, per-user report stores) plus additive accounting.  Because
every array is a linear aggregate, merging two partials is a pure
element-wise add (or an order-preserving concatenation for per-user
stores) — no floats, no backend kernels, no randomness — which is what
makes the merge tree associative and byte-exact.

Safety comes from the **fingerprint**: a JSON-compatible dict pinning
everything two shards must share for their sum to estimate anything —
method, sketch shape ``(k, m)``, privacy budget ``epsilon``, and a
digest of the published randomness (hash pairs / hash pools).  Merging
validates fingerprints through the same
:func:`repro.errors.require_merge_compatible` gate every in-memory merge
path uses, so a partial built under the wrong seed, the wrong width or
the wrong budget is refused instead of silently corrupting the estimate.

Serialisation reuses :mod:`repro.serialization`'s base64 raw-bytes array
codec, so a partial round-trips through plain JSON (files, queues, RPC)
with no per-element Python work; :func:`PartialAggregate.from_dict`
restores the exact dtypes recorded at save time, keeping
save → load → merge byte-identical to the in-memory merge.

The fingerprint pins *parameters*; payload *bytes* are pinned separately
by a crc32 content checksum (wire format version 2): a bit-flipped or
truncated array payload is rejected on load with
:class:`~repro.errors.PartialIntegrityError` instead of silently
corrupting the merge tree.  Version-1 payloads (no checksum) still load.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..errors import (
    IncompatibleSketchError,
    ParameterError,
    PartialIntegrityError,
    require_merge_compatible,
)
from ..serialization import decode_array, encode_array

__all__ = [
    "PartialAggregate",
    "fingerprint_digest",
    "content_checksum",
    "PARTIAL_FORMAT",
    "PARTIAL_VERSION",
]

#: Payload marker + version of the wire format.
PARTIAL_FORMAT = "repro/partial-aggregate"
PARTIAL_VERSION = 2

#: Oldest wire version :meth:`PartialAggregate.from_dict` still reads.
#: Version 1 predates the crc32 content checksum and loads unchecked.
PARTIAL_MIN_VERSION = 1

#: How an array merges: element-wise integer/float add, or order-preserving
#: concatenation along axis 0 (per-user stores such as OLH's report lists).
_ARRAY_OPS = ("sum", "concat")


def fingerprint_digest(payload: Any) -> str:
    """Stable short digest of JSON-compatible published state.

    Used to pin hash pairs / hash pools inside a fingerprint without
    shipping the (large) coefficient arrays twice: shards built from the
    same published randomness produce the same digest, any other seed
    produces a different one.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:32]


def content_checksum(arrays_payload: Mapping[str, Mapping[str, Any]]) -> int:
    """crc32 over the serialized array entries of a partial payload.

    Folds every array entry — name, merge op, dtype, packed base64 data —
    into a single crc32 via its canonical JSON (sorted keys, fixed
    separators), in sorted name order.  Stored as ``checksum`` in wire
    version 2 and verified on load: any bit flip or truncation inside the
    array payload changes the crc and is rejected with a typed error.
    """
    crc = 0
    for name in sorted(arrays_payload):
        canonical = json.dumps(
            {"name": name, **arrays_payload[name]},
            sort_keys=True,
            separators=(",", ":"),
        )
        crc = zlib.crc32(canonical.encode("utf-8"), crc)
    return crc & 0xFFFFFFFF


class PartialAggregate:
    """One shard's mergeable state: fingerprinted arrays + counters.

    Parameters
    ----------
    method:
        The collection protocol this partial belongs to (e.g.
        ``"join-session"``, ``"krr"``); partials of different methods
        never merge.
    fingerprint:
        JSON-compatible dict of everything shards must share (shape,
        budget, published-randomness digests).  Compared key-by-key on
        merge through :func:`repro.errors.require_merge_compatible`.
    arrays:
        Named accumulator arrays.  ``ops[name]`` selects the merge rule
        (``"sum"`` default, ``"concat"`` for per-user stores).  Arrays
        missing from one side are adopted from the other (a shard that
        never saw stream ``B`` simply contributes nothing to it).
    counters:
        Additive scalars (report counts, uplink bits, cohort counts,
        offline seconds); summed key-wise on merge.
    meta:
        Non-merged annotations (stream schema, shard ids).  ``charges``
        is special-cased: lists under it are concatenated on merge so
        privacy-ledger entries survive the tree.
    """

    __slots__ = ("method", "fingerprint", "arrays", "ops", "counters", "meta")

    def __init__(
        self,
        method: str,
        fingerprint: Mapping[str, Any],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        *,
        ops: Optional[Mapping[str, str]] = None,
        counters: Optional[Mapping[str, float]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.method = str(method)
        self.fingerprint = dict(fingerprint)
        self.arrays: Dict[str, np.ndarray] = {
            name: np.asarray(arr) for name, arr in dict(arrays or {}).items()
        }
        self.ops: Dict[str, str] = {name: "sum" for name in self.arrays}
        for name, op in dict(ops or {}).items():
            if op not in _ARRAY_OPS:
                raise ParameterError(
                    f"array op must be one of {_ARRAY_OPS}, got {op!r} for {name!r}"
                )
            self.ops[name] = op
        self.counters: Dict[str, float] = {
            key: float(value) for key, value in dict(counters or {}).items()
        }
        self.meta: Dict[str, Any] = dict(meta or {})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def add_array(self, name: str, array: np.ndarray, *, op: str = "sum") -> None:
        """Register one accumulator array (``op`` selects the merge rule)."""
        if op not in _ARRAY_OPS:
            raise ParameterError(f"array op must be one of {_ARRAY_OPS}, got {op!r}")
        self.arrays[name] = np.asarray(array)
        self.ops[name] = op

    def copy(self) -> "PartialAggregate":
        """A deep copy (merging mutates the left operand in place)."""
        clone = PartialAggregate(
            self.method,
            dict(self.fingerprint),
            {name: arr.copy() for name, arr in self.arrays.items()},
            ops=dict(self.ops),
            counters=dict(self.counters),
            meta=json.loads(json.dumps(self._json_meta())),
        )
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialAggregate):
            return NotImplemented
        return (
            self.method == other.method
            and self.fingerprint == other.fingerprint
            and set(self.arrays) == set(other.arrays)
            and all(
                self.arrays[n].dtype == other.arrays[n].dtype
                and np.array_equal(self.arrays[n], other.arrays[n])
                for n in self.arrays
            )
            and self.ops == other.ops
            and self.counters == other.counters
            and self._json_meta() == other._json_meta()
        )

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def check_mergeable(self, other: "PartialAggregate") -> None:
        """Raise :class:`~repro.errors.IncompatibleSketchError` on mismatch.

        Validates the format version, the method and every fingerprint
        field — wrong seed (digest), wrong ``m``, wrong ``epsilon`` and
        friends are all refused before any state is touched.
        """
        if not isinstance(other, PartialAggregate):
            raise IncompatibleSketchError(
                f"cannot merge PartialAggregate with {type(other).__name__}"
            )
        fields: Dict[str, Any] = {
            "method": (self.method, other.method),
            "fingerprint fields": (
                sorted(self.fingerprint),
                sorted(other.fingerprint),
            ),
        }
        for key in self.fingerprint:
            if key in other.fingerprint:
                fields[key] = (self.fingerprint[key], other.fingerprint[key])
        require_merge_compatible(f"{self.method} partials", **fields)
        # sorted() pins the validation order: which mismatch raises first
        # must not depend on set iteration order (RPR105).
        for name in sorted(set(self.arrays) & set(other.arrays)):
            mine, theirs = self.arrays[name], other.arrays[name]
            if self.ops[name] != other.ops.get(name, "sum"):
                raise IncompatibleSketchError(
                    f"cannot merge {self.method} partials: array {name!r} "
                    f"declares different merge ops"
                )
            if mine.dtype != theirs.dtype:
                raise IncompatibleSketchError(
                    f"cannot merge {self.method} partials: array {name!r} dtype "
                    f"mismatch ({mine.dtype} vs {theirs.dtype})"
                )
            if self.ops[name] == "sum" and mine.shape != theirs.shape:
                raise IncompatibleSketchError(
                    f"cannot merge {self.method} partials: array {name!r} shaped "
                    f"{mine.shape} vs {theirs.shape}"
                )

    def merge(self, other: "PartialAggregate") -> "PartialAggregate":
        """Fold ``other`` into this partial (in place). Returns self.

        Pure adds / concatenations on the raw accumulators — exact for
        integer arrays, order-preserving for per-user stores — so any
        merge topology over the same partials produces byte-identical
        state.
        """
        self.check_mergeable(other)
        for name, theirs in other.arrays.items():
            mine = self.arrays.get(name)
            if mine is None:
                self.arrays[name] = theirs.copy()
                self.ops[name] = other.ops.get(name, "sum")
            elif self.ops[name] == "concat":
                self.arrays[name] = np.concatenate([mine, theirs])
            else:
                self.arrays[name] = mine + theirs
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        mine_charges = self.meta.setdefault("charges", [])
        for charge in other.meta.get("charges", []):
            mine_charges.append(list(charge))
        if not mine_charges:
            del self.meta["charges"]
        for key, value in other.meta.items():
            if key == "charges":
                continue
            mine = self.meta.get(key)
            if mine is None:
                # Adopt by deep copy, never by reference: later merges
                # mutate the adopted structure in place, and the donor
                # partial (which a caller may still flush or re-merge)
                # must not see those edits.  Meta is JSON-compatible by
                # contract, so the JSON round-trip is a faithful copy.
                self.meta[key] = json.loads(json.dumps(value))
            elif isinstance(mine, dict) and isinstance(value, dict):
                # Schema maps (e.g. the session's per-stream descriptors)
                # union: a shard that never saw stream B still merges with
                # one that did.  Conflicting descriptors for the same
                # entry are refused — summed arrays would be garbage.
                for sub_key, sub_value in value.items():
                    if sub_key not in mine:
                        mine[sub_key] = sub_value
                    elif mine[sub_key] != sub_value:
                        raise IncompatibleSketchError(
                            f"cannot merge {self.method} partials: meta "
                            f"{key}[{sub_key!r}] disagrees "
                            f"({mine[sub_key]!r} vs {sub_value!r})"
                        )
            elif mine != value:
                # Scalar annotations must agree too: silently keeping one
                # side would let e.g. partials of two different protocol
                # rounds fuse into a valid-looking aggregate.
                raise IncompatibleSketchError(
                    f"cannot merge {self.method} partials: meta {key!r} "
                    f"disagrees ({mine!r} vs {value!r})"
                )
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def _json_meta(self) -> Dict[str, Any]:
        return json.loads(json.dumps(self.meta))

    def to_dict(self) -> dict:
        """JSON-compatible payload (arrays as base64 raw bytes).

        Each array entry records its exact dtype alongside the (possibly
        integer-narrowed) packed payload, so :meth:`from_dict` restores
        bit-identical accumulators.  ``checksum`` is the crc32 of the
        array entries (:func:`content_checksum`), verified on load.
        """
        arrays_payload = {
            name: {
                "op": self.ops[name],
                "dtype": str(arr.dtype),
                "data": encode_array(arr),
            }
            for name, arr in self.arrays.items()
        }
        return {
            "format": PARTIAL_FORMAT,
            "version": PARTIAL_VERSION,
            "method": self.method,
            "fingerprint": dict(self.fingerprint),
            "arrays": arrays_payload,
            "checksum": content_checksum(arrays_payload),
            "counters": dict(self.counters),
            "meta": self._json_meta(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PartialAggregate":
        """Rebuild a partial serialised by :meth:`to_dict`."""
        if not isinstance(payload, dict) or payload.get("format") != PARTIAL_FORMAT:
            raise ParameterError(
                f"not a partial-aggregate payload "
                f"(format={payload.get('format')!r} if a dict)"
                if isinstance(payload, dict)
                else "not a partial-aggregate payload"
            )
        version = payload.get("version")
        if (
            not isinstance(version, int)
            or not PARTIAL_MIN_VERSION <= version <= PARTIAL_VERSION
        ):
            raise ParameterError(
                f"unsupported partial-aggregate version {version!r} "
                f"(this build reads versions "
                f"{PARTIAL_MIN_VERSION}..{PARTIAL_VERSION})"
            )
        arrays_payload = payload.get("arrays", {})
        if version >= 2:
            recorded = payload.get("checksum")
            actual = content_checksum(arrays_payload)
            if recorded != actual:
                raise PartialIntegrityError(
                    f"partial-aggregate payload failed its content checksum "
                    f"(recorded {recorded!r}, computed {actual}): "
                    f"bit flip or truncation in the array data"
                )
        arrays: Dict[str, np.ndarray] = {}
        ops: Dict[str, str] = {}
        for name, entry in arrays_payload.items():
            try:
                arrays[name] = decode_array(entry["data"], np.dtype(entry["dtype"]))
            except ParameterError as error:
                # decode_array rejects byte-count mismatches (a truncated
                # base64 body that still crc-matched cannot happen, but a
                # version-1 payload has no crc to catch it first).
                raise PartialIntegrityError(
                    f"partial-aggregate array {name!r} failed to decode: {error}"
                ) from error
            ops[name] = entry.get("op", "sum")
        return cls(
            payload["method"],
            payload.get("fingerprint", {}),
            arrays,
            ops=ops,
            counters=payload.get("counters", {}),
            meta=payload.get("meta", {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartialAggregate(method={self.method!r}, "
            f"arrays={sorted(self.arrays)}, "
            f"num_reports={self.counters.get('num_reports', 0):g})"
        )
