"""Crash-safe checkpointing of shard aggregators.

A shard aggregator that dies mid-period must not force its whole cohort
stream to replay: after every flushed batch the aggregator writes its
current :class:`~repro.distributed.PartialAggregate` plus a *cursor*
(how many cohorts it has folded) to disk, atomically.  On restart,
:meth:`ShardCheckpoint.load` hands back the last flushed state and the
ingest loop resumes from the cursor — since cohort seeds are fixed by
the plan, the resumed run is byte-identical to an uninterrupted one.

Atomicity uses the classic temp-file + :func:`os.replace` dance: the
checkpoint on disk is always a complete, valid payload — a crash during
a flush leaves the previous checkpoint intact, never a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..errors import ParameterError
from .partial import PartialAggregate

__all__ = ["ShardCheckpoint", "ingest_with_checkpoint"]

#: Marker + version of the checkpoint file format.
CHECKPOINT_FORMAT = "repro/shard-checkpoint"
CHECKPOINT_VERSION = 1


class ShardCheckpoint:
    """Atomic flush/load of one shard aggregator's partial state."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def flush(self, partial: PartialAggregate, *, cursor: int) -> None:
        """Write ``partial`` + ``cursor`` atomically (temp + rename)."""
        if cursor < 0:
            raise ParameterError(f"cursor must be >= 0, got {cursor}")
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "cursor": int(cursor),
            "partial": partial.to_dict(),
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)

    def load(self) -> Optional[Tuple[PartialAggregate, int]]:
        """The last flushed ``(partial, cursor)``, or ``None`` if absent."""
        if not self.path.exists():
            return None
        payload = json.loads(self.path.read_text())
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ParameterError(
                f"{self.path} is not a shard checkpoint "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ParameterError(
                f"unsupported checkpoint version {payload.get('version')!r}"
            )
        return PartialAggregate.from_dict(payload["partial"]), int(payload["cursor"])

    def clear(self) -> None:
        """Remove the checkpoint (after its partial reached the tree)."""
        if self.path.exists():
            self.path.unlink()


def ingest_with_checkpoint(
    shard_session,
    stream: str,
    cohorts: Sequence,
    cohort_seeds: Sequence,
    checkpoint: ShardCheckpoint,
    *,
    attribute: int = 0,
) -> PartialAggregate:
    """Fold ``cohorts`` into a shard session, checkpointing after each.

    ``shard_session`` is an *empty* :class:`~repro.api.JoinSession` shard
    (built from the coordinator's shared pairs); ``cohort_seeds[i]``
    fixes cohort ``i``'s client randomness, so a killed aggregator that
    restarts with the same arguments resumes from the last flushed
    cohort and finishes byte-identical to an uninterrupted run.  Returns
    the final partial (which the checkpoint also holds).
    """
    if len(cohorts) != len(cohort_seeds):
        raise ParameterError(
            f"got {len(cohorts)} cohorts but {len(cohort_seeds)} seeds"
        )
    start = 0
    state = checkpoint.load()
    if state is not None:
        partial, cursor = state
        if cursor > len(cohorts):
            raise ParameterError(
                f"checkpoint cursor {cursor} exceeds the {len(cohorts)}-cohort plan"
            )
        shard_session.merge(partial)
        start = cursor
    if start == len(cohorts) and state is not None:
        # Nothing to replay: hand back the flushed state itself.
        return state[0]
    for index in range(start, len(cohorts)):
        shard_session.collect(
            stream, cohorts[index], attribute=attribute, seed=cohort_seeds[index]
        )
        checkpoint.flush(shard_session.to_partial(), cursor=index + 1)
    return shard_session.to_partial()
