"""Crash-safe checkpointing of shard aggregators.

A shard aggregator that dies mid-period must not force its whole cohort
stream to replay: after every flushed batch the aggregator writes its
current :class:`~repro.distributed.PartialAggregate` plus a *cursor*
(how many cohorts it has folded) to disk, atomically.  On restart,
:meth:`ShardCheckpoint.load` hands back the last flushed state and the
ingest loop resumes from the cursor — since cohort seeds are fixed by
the plan, the resumed run is byte-identical to an uninterrupted one.

Atomicity uses the classic temp-file + :func:`os.replace` dance: the
checkpoint on disk is always a complete, valid payload — a crash during
a flush leaves the previous checkpoint intact, never a torn file.

A checkpoint that is nevertheless unreadable (torn by a power cut
mid-``os.replace`` on a non-atomic filesystem, bit-rotted, truncated by
an operator) raises the typed
:class:`~repro.errors.CheckpointCorruptError` instead of leaking
``json.JSONDecodeError`` / ``KeyError``; :func:`ingest_with_checkpoint`
treats that as a *cold start* — replays the full cohort plan from
scratch and records the recovery in the partial's meta — so a corrupt
checkpoint costs time, never correctness.

Fault points (armed by :class:`repro.reliability.FaultPlan`):
``checkpoint.flush`` (``torn-write`` specs truncate the bytes actually
written), ``checkpoint.load`` and ``checkpoint.ingest`` (one hit per
cohort folded).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..errors import CheckpointCorruptError, ParameterError, PartialIntegrityError
from ..reliability.faults import fault_point
from .partial import PartialAggregate

__all__ = ["ShardCheckpoint", "ingest_with_checkpoint"]

#: Marker + version of the checkpoint file format.
CHECKPOINT_FORMAT = "repro/shard-checkpoint"
CHECKPOINT_VERSION = 1


class ShardCheckpoint:
    """Atomic flush/load of one shard aggregator's partial state.

    Every flush fsyncs the temp file *before* the rename and the
    directory *after* it.  Skipping the file fsync would let the classic
    rename-before-data crash surface the new name with empty or torn
    contents — the previous checkpoint gone, its replacement garbage —
    which is precisely what the atomic dance promises cannot happen;
    skipping the directory fsync would let a power cut forget the rename
    itself.  ``fsync=False`` is accepted for backward compatibility but
    no longer weakens the guarantee: atomicity that evaporates on the
    first real crash is not atomicity.
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)

    def flush(self, partial: PartialAggregate, *, cursor: int) -> None:
        """Write ``partial`` + ``cursor`` atomically (temp + rename)."""
        if cursor < 0:
            raise ParameterError(f"cursor must be >= 0, got {cursor}")
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "cursor": int(cursor),
            "partial": partial.to_dict(),
        }
        text = json.dumps(payload)
        spec = fault_point("checkpoint.flush", path=str(self.path), cursor=cursor)
        if spec is not None and spec.kind == "torn-write":
            # Model a write torn mid-payload: only half the bytes land.
            text = text[: max(1, len(text) // 2)]
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def load(self) -> Optional[Tuple[PartialAggregate, int]]:
        """The last flushed ``(partial, cursor)``, or ``None`` if absent.

        Raises :class:`~repro.errors.CheckpointCorruptError` on a file
        that exists but cannot be trusted: invalid JSON (torn write),
        missing fields, a malformed partial payload, or a partial whose
        content checksum fails.  A *valid* file of the wrong format or
        version still raises :class:`~repro.errors.ParameterError` —
        that is a configuration mistake, not corruption, and cold-start
        recovery must not paper over it.
        """
        if not self.path.exists():
            return None
        fault_point("checkpoint.load", path=str(self.path))
        try:
            payload = json.loads(self.path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointCorruptError(self.path, f"invalid JSON ({error})") from error
        if not isinstance(payload, dict):
            raise CheckpointCorruptError(
                self.path, f"expected a JSON object, got {type(payload).__name__}"
            )
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ParameterError(
                f"{self.path} is not a shard checkpoint "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ParameterError(
                f"unsupported checkpoint version {payload.get('version')!r}"
            )
        try:
            partial = PartialAggregate.from_dict(payload["partial"])
            cursor = int(payload["cursor"])
        except PartialIntegrityError as error:
            raise CheckpointCorruptError(self.path, str(error)) from error
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptError(
                self.path, f"malformed payload ({type(error).__name__}: {error})"
            ) from error
        if cursor < 0:
            raise CheckpointCorruptError(self.path, f"negative cursor {cursor}")
        return partial, cursor

    def clear(self) -> None:
        """Remove the checkpoint (after its partial reached the tree)."""
        if self.path.exists():
            self.path.unlink()


def ingest_with_checkpoint(
    shard_session,
    stream: str,
    cohorts: Sequence,
    cohort_seeds: Sequence,
    checkpoint: ShardCheckpoint,
    *,
    attribute: int = 0,
) -> PartialAggregate:
    """Fold ``cohorts`` into a shard session, checkpointing after each.

    ``shard_session`` is an *empty* :class:`~repro.api.JoinSession` shard
    (built from the coordinator's shared pairs); ``cohort_seeds[i]``
    fixes cohort ``i``'s client randomness, so a killed aggregator that
    restarts with the same arguments resumes from the last flushed
    cohort and finishes byte-identical to an uninterrupted run.  Returns
    the final partial (which the checkpoint also holds).

    A corrupt checkpoint (:class:`~repro.errors.CheckpointCorruptError`)
    downgrades to a **cold start**: the full cohort plan replays from
    cohort 0 — byte-identical to a never-checkpointed run, since the
    seeds are plan-fixed — and the recovery is recorded in the returned
    partial's ``meta["checkpoint_recovery"]`` (keyed by checkpoint path
    so the annotation survives meta's dict-union merge).
    """
    if len(cohorts) != len(cohort_seeds):
        raise ParameterError(
            f"got {len(cohorts)} cohorts but {len(cohort_seeds)} seeds"
        )
    start = 0
    state = None
    try:
        state = checkpoint.load()
    except CheckpointCorruptError as error:
        recovery = {
            "reason": error.reason,
            "cold_start": True,
            "cohorts_replayed": len(cohorts),
        }
    else:
        recovery = None
    if state is not None:
        partial, cursor = state
        if cursor > len(cohorts):
            raise ParameterError(
                f"checkpoint cursor {cursor} exceeds the {len(cohorts)}-cohort plan"
            )
        shard_session.merge(partial)
        start = cursor
    if start == len(cohorts) and state is not None:
        # Nothing to replay: hand back the flushed state itself.
        return state[0]
    for index in range(start, len(cohorts)):
        fault_point(
            "checkpoint.ingest", path=str(checkpoint.path), cohort=index
        )
        shard_session.collect(
            stream, cohorts[index], attribute=attribute, seed=cohort_seeds[index]
        )
        checkpoint.flush(shard_session.to_partial(), cursor=index + 1)
    result = shard_session.to_partial()
    if recovery is not None:
        result.meta["checkpoint_recovery"] = {str(checkpoint.path): recovery}
    return result
