"""Deterministic client-population sharding.

A production collection period ingests through many aggregators, not one
process: the client population is split into ``K`` shards, each shard's
aggregator folds its cohort into a :class:`~repro.distributed.PartialAggregate`,
and a merge tree reduces the partials back into the coordinator's state.
The split must be a *pure function* of the plan — never of scheduling —
so that any execution (serial, process pool, different machines) produces
byte-identical results.  :class:`ShardPlanner` owns exactly that
determinism:

* **partitioning** is hash- or range-based and depends only on the
  values (hash) or their order (range), never on randomness;
* **per-shard seeds** derive from the planner's master seed in shard
  order, so shard ``s`` draws the same perturbation randomness no matter
  where or when it runs;
* **K = 1 is the identity**: the single shard receives the population
  unchanged and the master seed *itself* (no derivation step), so a
  one-shard plan reproduces today's single-aggregator figures bit for
  bit.

The planner deliberately does not touch the privacy analysis: shards are
disjoint user groups, so per-shard collection composes in parallel
exactly like the per-cohort ``collect`` calls it replaces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import ParameterError
from ..rng import RandomState, derive_seed, ensure_rng
from ..validation import require_positive_int

__all__ = ["ShardPlanner", "SHARD_STRATEGIES"]

#: Multiplier/increment of the value-hash partition (splitmix64-style odd
#: constants; fixed so hash plans are stable across runs and machines).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_HASH_INCREMENT = np.uint64(0xD1B54A32D192ED03)

SHARD_STRATEGIES = ("hash", "range")


class ShardPlanner:
    """Split client populations into ``K`` deterministic shards.

    Parameters
    ----------
    num_shards:
        Shard count ``K``.
    strategy:
        ``"hash"`` routes each client by a fixed mix of its *value*
        (clients holding the same value always land on the same shard,
        whatever order they arrive in); ``"range"`` cuts the population
        into ``K`` near-equal contiguous blocks (balanced shard sizes,
        order-dependent).  Both preserve the within-shard client order.
    seed:
        Master seed of the per-shard randomness.  ``shard_seeds()`` is a
        pure function of it: shard ``s`` always receives the same seed,
        so a shard can be re-run (or resumed after a crash) bit for bit.
        ``None`` means the caller supplies generators itself (e.g. a
        :class:`~repro.api.JoinSession` using its session stream for the
        ``K = 1`` identity plan).
    """

    def __init__(
        self,
        num_shards: int,
        *,
        strategy: str = "hash",
        seed: RandomState = None,
    ) -> None:
        self.num_shards = require_positive_int("num_shards", num_shards)
        if strategy not in SHARD_STRATEGIES:
            raise ParameterError(
                f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
            )
        self.strategy = strategy
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise ParameterError(
                f"planner seed must be an int (a shareable plan datum), got "
                f"{type(seed).__name__}"
            )
        self.seed = None if seed is None else int(seed)

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def shard_of(self, values: Union[np.ndarray, Sequence[int]]) -> np.ndarray:
        """The shard id of every client (hash strategy's routing table)."""
        arr = np.asarray(values, dtype=np.int64)
        if self.strategy == "range":
            bounds = self._range_bounds(arr.size)
            return np.searchsorted(bounds[1:], np.arange(arr.size), side="right")
        mixed = (arr.astype(np.uint64) * _HASH_MULTIPLIER) + _HASH_INCREMENT
        mixed ^= mixed >> np.uint64(31)
        return (mixed % np.uint64(self.num_shards)).astype(np.int64)

    def split(self, values: Union[np.ndarray, Sequence[int]]) -> List[np.ndarray]:
        """Partition ``values`` into ``K`` arrays (within-shard order kept).

        ``K = 1`` returns the input array unchanged (same object when it
        already is an int64 ndarray) — the identity plan.
        """
        arr = np.asarray(values, dtype=np.int64)
        if self.num_shards == 1:
            return [arr]
        if self.strategy == "range":
            bounds = self._range_bounds(arr.size)
            return [arr[bounds[s] : bounds[s + 1]] for s in range(self.num_shards)]
        owners = self.shard_of(arr)
        return [arr[owners == s] for s in range(self.num_shards)]

    def _range_bounds(self, n: int) -> np.ndarray:
        return np.linspace(0, n, self.num_shards + 1).astype(np.int64)

    # ------------------------------------------------------------------
    # Per-shard randomness
    # ------------------------------------------------------------------
    def shard_seeds(self, fallback: RandomState = None) -> List[Optional[int]]:
        """One deterministic seed per shard.

        With ``K = 1`` the master seed passes through *underived* (or
        ``fallback`` when the planner has no seed) — this is what makes a
        one-shard plan replay the unsharded path bit for bit.  With
        ``K > 1`` the seeds are drawn from the master seed in shard
        order; ``fallback`` (an int or a live generator, e.g. a session
        stream) replaces a missing master seed.
        """
        source: RandomState = self.seed if self.seed is not None else fallback
        if self.num_shards == 1:
            if source is None:
                return [None]
            if isinstance(source, (int, np.integer)):
                return [int(source)]
            return [source]  # a live generator passes straight through
        if source is None:
            raise ParameterError(
                "a multi-shard plan needs a seed (planner seed or fallback); "
                "shard randomness must be fixed by the plan, not by scheduling"
            )
        rng = ensure_rng(source)
        return [derive_seed(rng) for _ in range(self.num_shards)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardPlanner(num_shards={self.num_shards}, "
            f"strategy={self.strategy!r}, seed={self.seed})"
        )
