"""Sharded mergeable aggregation — scatter/gather collection at scale.

The paper's sketches are linear, so partial sketches built from disjoint
client shards merge *exactly*: ingestion can fan out over many
aggregators and fold back through a merge tree without changing a single
bit of the result.  This package owns that machinery:

* :class:`ShardPlanner` — deterministic population splits (hash / range)
  with plan-fixed per-shard seeds; ``K = 1`` is the identity plan that
  reproduces the unsharded figures bit for bit;
* :class:`PartialAggregate` — the versioned, fingerprinted wire format
  shards ship (raw integer accumulators + additive accounting, base64
  raw-bytes JSON payloads); unsafe merges — wrong seed, wrong ``m``,
  wrong ``epsilon`` — are refused;
* :func:`merge_tree` / :func:`merge_sequential` — pairwise tree and
  left-fold reductions, byte-identical by construction (pure integer
  adds, pre-FWHT, backend-agnostic);
* :class:`ShardCheckpoint` / :func:`ingest_with_checkpoint` — atomic
  flush/resume, so a killed aggregator restarts from its last flushed
  partial and finishes byte-identical to an uninterrupted run; a
  *corrupt* checkpoint downgrades to a logged cold start instead of a
  crash;
* :func:`estimate_sharded` / :func:`prepare_shard_run` — sharded
  execution of every registry method, with the core guarantee the
  property suite enforces: for any method and any ``K``, the tree-merged
  estimate is byte-identical to the single-aggregator run.

Fault tolerance (:mod:`repro.reliability`) is threaded throughout:
every shard collect passes the ``shard.collect`` fault point and can be
retried under a :class:`~repro.reliability.RetryPolicy` with its
randomness restored per attempt (absorbed faults are byte-invisible);
``degraded=True`` merges K−f survivors when a shard is lost outright,
rescaling by the planner's client coverage and recording
``shards_lost`` / ``coverage`` / ``bound_factor`` in the result; wire
payloads carry a crc32 content checksum (version 2) so bit flips and
truncation are rejected with typed errors.
"""

from .checkpoint import ShardCheckpoint, ingest_with_checkpoint
from .collectors import (
    ShardRun,
    estimate_sharded,
    pool_shardable,
    prepare_shard_run,
    shardable_single_round,
)
from .merge import merge_sequential, merge_tree
from .partial import (
    PARTIAL_FORMAT,
    PARTIAL_MIN_VERSION,
    PARTIAL_VERSION,
    PartialAggregate,
    content_checksum,
    fingerprint_digest,
)
from .planner import SHARD_STRATEGIES, ShardPlanner

__all__ = [
    "ShardPlanner",
    "SHARD_STRATEGIES",
    "PartialAggregate",
    "PARTIAL_FORMAT",
    "PARTIAL_VERSION",
    "PARTIAL_MIN_VERSION",
    "fingerprint_digest",
    "content_checksum",
    "merge_tree",
    "merge_sequential",
    "ShardCheckpoint",
    "ingest_with_checkpoint",
    "ShardRun",
    "estimate_sharded",
    "pool_shardable",
    "prepare_shard_run",
    "shardable_single_round",
]
