"""Merge-tree reduction over partial aggregates.

The reducers here implement the gather half of scatter/gather collection:
shards emit :class:`~repro.distributed.PartialAggregate`\\ s, the
coordinator folds them back.  Two topologies are provided —

* :func:`merge_tree`: pairwise balanced reduction, ``ceil(log2 K)``
  levels.  This is what a real deployment runs (intermediate aggregators
  merge their children), and what the sweep pool's parent uses;
* :func:`merge_sequential`: the left fold a single aggregator performs
  when it ingests every shard itself.

Because partial merges are pure integer adds (and order-preserving
concatenations) on pre-transform accumulators, **both topologies produce
byte-identical state** — the core guarantee the distributed property
suite enforces for every registry method and every shard count.  Both
preserve left-to-right shard order, so even per-user concat stores come
out identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ParameterError, ShardLostError
from ..reliability.faults import fault_point
from .partial import PartialAggregate

__all__ = ["merge_tree", "merge_sequential"]


def _prepare(
    partials: Sequence[Optional[PartialAggregate]], copy: bool, degraded: bool
) -> List[PartialAggregate]:
    if not partials:
        raise ParameterError("cannot merge an empty list of partials")
    lost = [index for index, p in enumerate(partials) if p is None]
    if lost and not degraded:
        raise ShardLostError(
            f"missing partial(s) for shard(s) {lost} "
            f"(pass degraded=True to merge the survivors)",
            lost=lost,
        )
    survivors = [p for p in partials if p is not None]
    if not survivors:
        raise ShardLostError(
            f"all {len(partials)} shard partial(s) lost; nothing to merge",
            lost=lost,
        )
    fault_point("merge.reduce", count=len(survivors), lost=len(lost))
    return [p.copy() for p in survivors] if copy else survivors


def merge_tree(
    partials: Sequence[Optional[PartialAggregate]],
    *,
    copy: bool = True,
    degraded: bool = False,
) -> PartialAggregate:
    """Pairwise tree reduction of ``partials`` (left-to-right, balanced).

    ``[p0, p1, p2, p3, p4]`` reduces as ``((p0+p1) + (p2+p3)) + p4`` —
    the topology intermediate aggregators produce.  With ``copy=True``
    (default) the inputs are left untouched; ``copy=False`` reuses the
    input objects as scratch (faster, consumes them).

    ``degraded=True`` tolerates lost shards: ``None`` entries (a shard
    whose partial never arrived, or was quarantined after retries) are
    dropped and the surviving K−f partials merge as usual — the caller
    rescales the estimate by the survivors' client coverage
    (:func:`repro.distributed.estimate_sharded` does this and records
    ``shards_lost`` in the result ledger).  Without ``degraded``, a
    ``None`` entry raises :class:`~repro.errors.ShardLostError` naming
    the missing shard positions; losing *every* shard is an error in
    both modes.

    The result is byte-identical to :func:`merge_sequential` over the
    same list: every merge is an exact add on raw accumulators, so the
    reduction is associative.
    """
    level = _prepare(partials, copy, degraded)
    while len(level) > 1:
        merged: List[PartialAggregate] = []
        for i in range(0, len(level) - 1, 2):
            merged.append(level[i].merge(level[i + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def merge_sequential(
    partials: Sequence[Optional[PartialAggregate]],
    *,
    copy: bool = True,
    degraded: bool = False,
) -> PartialAggregate:
    """Left fold of ``partials`` — the single-aggregator reference order.

    ``degraded`` has the same lost-shard semantics as :func:`merge_tree`.
    """
    level = _prepare(partials, copy, degraded)
    result = level[0]
    for partial in level[1:]:
        result.merge(partial)
    return result
