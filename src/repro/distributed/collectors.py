"""Sharded collection drivers for every registered estimator.

:func:`estimate_sharded` runs any registry method as ``K`` shard
aggregators plus a merge tree: the client population is partitioned by a
:class:`~repro.distributed.ShardPlanner`, each shard folds its cohort
into a :class:`~repro.distributed.PartialAggregate` under plan-fixed
randomness, the partials reduce through :func:`~repro.distributed.merge_tree`
(or :func:`~repro.distributed.merge_sequential` — the single-aggregator
order), and a finaliser turns the merged state into the method's
:class:`~repro.api.EstimateResult`.

Determinism contract, enforced by the property suite:

* for any shard count ``K`` and either merge topology, the merged
  accumulators — and hence the estimate and every deterministic cost
  field — are **byte-identical**: partial merges are exact integer adds;
* ``K = 1`` replays the unsharded ``estimate(instance, epsilon, seed)``
  **bit for bit**: the identity plan hands the single shard the master
  randomness itself, so today's figures are the one-shard special case.

Each protocol family has one driver:

* ``join-session`` methods (LDPJoinSketch, LDP-COMPASS) shard through
  :meth:`JoinSession.to_partial`;
* frequency-oracle baselines (k-RR, OLH, FLH, Apple-HCMS) shard the
  oracle server state (count tables / per-user stores);
* the non-private FAGMS baseline shards its linear sketch counters;
* LDPJoinSketch+ runs the faithful *two-round* distributed protocol:
  shards merge phase-1 partials, the coordinator broadcasts the
  frequent-item set, shards produce phase-2 FAP partials, and the
  coordinator finalises Algorithm 5.
"""

from __future__ import annotations

import copy
import math
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..api.registry import get_estimator, resolve_estimator
from ..api.result import EstimateResult
from ..api.session import JoinSession
from ..core.client import encode_reports
from ..core.estimator import find_frequent_items
from ..core.fap import MODE_HIGH, MODE_LOW, fap_encode_reports
from ..core.params import SketchParams
from ..core.plus import LDPJoinSketchPlus
from ..core.server import LDPJoinSketch
from ..errors import ParameterError, RetryExhaustedError, ShardLostError
from ..hashing import HashPairs
from ..privacy.budget import BudgetLedger, PrivacySpec
from ..reliability.faults import FaultPlan, fault_point, injected
from ..reliability.retry import DEFAULT_RETRYABLE, RetryPolicy
from ..rng import RandomState, derive_seed, ensure_rng, spawn
from ..sketches import FastAGMSSketch
from ..transform.hadamard import fwht_inplace
from ..validation import as_value_array, require_positive_int
from .merge import merge_sequential, merge_tree
from .partial import PartialAggregate, fingerprint_digest
from .planner import ShardPlanner

__all__ = [
    "estimate_sharded",
    "prepare_shard_run",
    "ShardRun",
    "shardable_single_round",
]

#: Valid reducers (``merge=`` argument).
_MERGERS = {"tree": merge_tree, "sequential": merge_sequential}

#: Failures that mean "this shard's partial is gone" (degradable), as
#: opposed to configuration errors, which always propagate.
_SHARD_LOSS_ERRORS = (RetryExhaustedError,) + DEFAULT_RETRYABLE


def _reduce(
    partials: Sequence[Optional[PartialAggregate]],
    merge: str,
    *,
    degraded: bool = False,
) -> PartialAggregate:
    try:
        reducer = _MERGERS[merge]
    except KeyError:
        raise ParameterError(
            f"merge must be one of {tuple(_MERGERS)}, got {merge!r}"
        ) from None
    return reducer(partials, degraded=degraded)


def _as_policy(retries: Union[None, int, RetryPolicy]) -> Optional[RetryPolicy]:
    """Normalise a ``retries=`` argument (attempt count or policy)."""
    if retries is None or isinstance(retries, RetryPolicy):
        return retries
    return RetryPolicy(int(retries))


def _as_plan(fault_plan: Union[None, str, Path, FaultPlan]) -> Optional[FaultPlan]:
    """Normalise a ``fault_plan=`` argument (plan object or JSON path)."""
    if fault_plan is None or isinstance(fault_plan, FaultPlan):
        return fault_plan
    return FaultPlan.load(fault_plan)


def _generator_reset(seed) -> Optional[Callable[[], None]]:
    """A callback restoring ``seed``'s current stream position, if live.

    Retried collects must replay the original randomness byte-for-byte;
    plans that hand a shard a *live* generator (the K=1 identity plan,
    the plus driver's shard streams) snapshot its ``bit_generator.state``
    before the first attempt and restore it before every re-attempt.
    Integer seeds need nothing — each attempt rebuilds its own stream.
    """
    if not isinstance(seed, np.random.Generator):
        return None
    state = copy.deepcopy(seed.bit_generator.state)

    def reset() -> None:
        seed.bit_generator.state = copy.deepcopy(state)

    return reset


def _collect_shard(
    driver, ctx, method: str, s: int, policy: Optional[RetryPolicy]
) -> PartialAggregate:
    """One shard's partial, through the ``shard.collect`` fault point.

    With a policy, the collect is retried under RNG-state restoration so
    an absorbed fault leaves the partial byte-identical to a fault-free
    collect.
    """

    def attempt() -> PartialAggregate:
        fault_point("shard.collect", shard=s, method=method)
        return driver.collect(ctx, s)

    if policy is None:
        return attempt()
    seeds = getattr(ctx, "shard_seeds", None)
    reset = _generator_reset(seeds[s]) if seeds is not None else None
    return policy.call(
        attempt, operation=f"{method}: collect shard {s}", reset=reset
    )


def _degradation_scale(strategy: str, cov_a: float, cov_b: float) -> float:
    """Fraction of the join mass the surviving shards cover.

    ``hash`` sharding partitions the *value domain*, and both streams of
    one shard hold the same value block — the join mass is block-diagonal
    across shards, so losing a shard removes its value block from both
    sides at once and the surviving mass is ≈ the covered value fraction
    (estimated by the mean client coverage).  ``range`` sharding splits
    *users* independently of value, so each stream thins independently
    and the surviving mass is the product of the two coverages.
    """
    if strategy == "range":
        return cov_a * cov_b
    return 0.5 * (cov_a + cov_b)


def _shard_sizes(ctx, num_shards: int) -> Tuple[List[int], List[int]]:
    return (
        [int(ctx.splits_a[s].size) for s in range(num_shards)],
        [int(ctx.splits_b[s].size) for s in range(num_shards)],
    )


def _require_surviving_coverage(
    sizes_a: Sequence[int], sizes_b: Sequence[int], lost: Sequence[int]
) -> None:
    """Degrading needs survivors that still hold clients of both streams.

    A hash split over a skewed domain can be degenerate — one shard holds
    every client of a stream — so losing it leaves nothing to rescale:
    coverage is zero and a survivors-only finalise would fail on empty
    accumulators.  Surface that as the same typed loss as losing every
    shard.
    """
    lost_set = set(lost)
    if len(lost_set) >= len(sizes_a):
        return  # every shard lost: the merger raises the canonical error
    for stream, sizes in (("A", sizes_a), ("B", sizes_b)):
        if sum(sizes) and not any(
            sizes[s] for s in range(len(sizes)) if s not in lost_set
        ):
            raise ShardLostError(
                f"lost shard(s) {sorted(lost_set)} held every client of "
                f"stream {stream!r}; surviving coverage is zero",
                lost=sorted(lost_set),
            )


def _apply_degradation(
    result: EstimateResult,
    *,
    strategy: str,
    sizes_a: Sequence[int],
    sizes_b: Sequence[int],
    lost: Sequence[int],
) -> EstimateResult:
    """Rescale a survivors-only estimate and ledger the lost coverage.

    ``result.estimate`` is the join size of the *covered* population —
    single-round finalisers produce that implicitly (the merged
    accumulators simply hold fewer reports), the plus driver computes it
    explicitly over covered group sizes.  The ledgered ``bound_factor``
    is the factor by which the estimate's error bound widens: the
    surviving mass was scaled up by ``1/scale``, so absolute error
    scales with it.
    """
    lost_set = set(lost)
    survivors = [s for s in range(len(sizes_a)) if s not in lost_set]
    total_a, total_b = sum(sizes_a), sum(sizes_b)
    cov_a = sum(sizes_a[s] for s in survivors) / total_a if total_a else 0.0
    cov_b = sum(sizes_b[s] for s in survivors) / total_b if total_b else 0.0
    scale = _degradation_scale(strategy, cov_a, cov_b)
    factor = 1.0 / scale if scale > 0.0 else 1.0
    degraded_info = {
        "shards_lost": sorted(lost_set),
        "coverage": {"A": cov_a, "B": cov_b},
        "strategy": strategy,
        "rescale": factor,
        "bound_factor": factor,
    }
    return replace(
        result,
        estimate=result.estimate * factor,
        extras={**result.extras, "degraded": degraded_info},
    )


def _two_stream_ledger(epsilon: float, mechanism: str) -> BudgetLedger:
    ledger = BudgetLedger()
    ledger.charge("A", epsilon, mechanism)
    ledger.charge("B", epsilon, mechanism)
    return ledger


class _LazySplits:
    """Defers the O(n) population partition until a shard is accessed.

    Re-planning a run for *finalisation* only needs its context (params,
    pairs, seeds) — never the splits — so the partition cost is paid
    exactly by the paths that collect shards, and a parent that merely
    finalises worker-collected partials stays O(1) in the population.
    """

    __slots__ = ("_planner", "_values", "_splits")

    def __init__(self, planner: ShardPlanner, values: np.ndarray) -> None:
        self._planner = planner
        self._values = values
        self._splits = None

    def __getitem__(self, index: int) -> np.ndarray:
        if self._splits is None:
            self._splits = self._planner.split(self._values)
            self._values = None
        return self._splits[index]


class ShardRun:
    """One planned sharded estimation: ``collect(s)`` then ``finalize``.

    Instances come from :func:`prepare_shard_run` and are pure functions
    of ``(estimator, instance, epsilon, num_shards, seed, strategy)`` —
    a worker process can rebuild the identical run from those arguments
    and execute any subset of its shards.
    """

    def __init__(self, driver, ctx, num_shards: int, method: str = "") -> None:
        self._driver = driver
        self._ctx = ctx
        self.num_shards = num_shards
        self.method = method

    def collect(
        self,
        shard_index: int,
        *,
        retries: Union[None, int, RetryPolicy] = None,
    ) -> PartialAggregate:
        """The partial of shard ``shard_index`` (plan-fixed randomness).

        Passes the ``shard.collect`` fault point; ``retries`` (an attempt
        count or a :class:`~repro.reliability.RetryPolicy`) absorbs
        transient failures with the randomness restored per attempt, so
        a retried collect stays byte-identical to a fault-free one.
        """
        if not 0 <= shard_index < self.num_shards:
            raise ParameterError(
                f"shard_index must lie in [0, {self.num_shards}), got {shard_index}"
            )
        return _collect_shard(
            self._driver, self._ctx, self.method, shard_index, _as_policy(retries)
        )

    def collect_all(self) -> List[PartialAggregate]:
        """Every shard's partial, in shard order."""
        return [self.collect(s) for s in range(self.num_shards)]

    def finalize(self, merged: PartialAggregate) -> EstimateResult:
        """Turn the reduced partial into the method's estimate."""
        return self._driver.finalize(self._ctx, merged)


# ======================================================================
# JoinSession family (LDPJoinSketch, LDP-COMPASS)
# ======================================================================
class _SessionContext:
    __slots__ = ("params", "pairs", "query", "splits_a", "splits_b", "shard_seeds")

    def __init__(self, params, pairs, query, splits_a, splits_b, shard_seeds):
        self.params = params
        self.pairs = pairs
        self.query = query
        self.splits_a = splits_a
        self.splits_b = splits_b
        self.shard_seeds = shard_seeds


class _SessionDriver:
    """LDPJoinSketch / LDP-COMPASS through ``JoinSession`` partials."""

    #: Finalisation is an FWHT + one einsum — O(k m log m), independent
    #: of the population — so a pool parent can afford to run it inline.
    cheap_finalize = True

    def __init__(self, query: str) -> None:
        self.query = query  # "join" or "chain"

    def prepare(self, estimator, instance, epsilon, num_shards, seed, strategy):
        params = SketchParams(estimator.k, estimator.m, epsilon)
        rng = ensure_rng(seed)
        # Same draw order as JoinSession(params, seed=rng): one spawned
        # child per attribute.
        pairs = [HashPairs(params.k, params.m, spawn(rng))]
        planner = ShardPlanner(num_shards, strategy=strategy)
        if num_shards == 1:
            # Identity plan: the single shard continues the master stream,
            # so K = 1 replays estimate(instance, epsilon, seed) bit for bit.
            shard_seeds: List = [rng]
        else:
            shard_seeds = ShardPlanner(
                num_shards, strategy=strategy, seed=derive_seed(rng)
            ).shard_seeds()
        return _SessionContext(
            params,
            pairs,
            self.query,
            _LazySplits(planner, as_value_array(instance.values_a, "values_a")),
            _LazySplits(planner, as_value_array(instance.values_b, "values_b")),
            shard_seeds,
        )

    def collect(self, ctx: _SessionContext, s: int) -> PartialAggregate:
        shard = JoinSession(ctx.params, pairs=ctx.pairs, seed=ctx.shard_seeds[s])
        shard.collect("A", ctx.splits_a[s])
        shard.collect("B", ctx.splits_b[s])
        return shard.to_partial()

    def finalize(self, ctx: _SessionContext, merged: PartialAggregate) -> EstimateResult:
        coordinator = JoinSession(ctx.params, pairs=ctx.pairs)
        coordinator.merge(merged)
        if ctx.query == "chain":
            result = coordinator.estimate_chain(["A", "B"])
        else:
            result = coordinator.estimate("A", "B")
        result.ledger.assert_within(PrivacySpec(ctx.params.epsilon))
        return result


# ======================================================================
# Non-private FAGMS baseline
# ======================================================================
class _FagmsContext:
    __slots__ = ("pairs", "splits_a", "splits_b", "domain_size")

    def __init__(self, pairs, splits_a, splits_b, domain_size):
        self.pairs = pairs
        self.splits_a = splits_a
        self.splits_b = splits_b
        self.domain_size = domain_size


class _FagmsDriver:
    """Fast-AGMS: deterministic linear updates, partials are counter sums."""

    cheap_finalize = True

    def prepare(self, estimator, instance, epsilon, num_shards, seed, strategy):
        rng = ensure_rng(seed)
        pairs = HashPairs(estimator.k, estimator.m, rng)  # serial draw order
        planner = ShardPlanner(num_shards, strategy=strategy)
        return _FagmsContext(
            pairs,
            _LazySplits(planner, as_value_array(instance.values_a, "values_a")),
            _LazySplits(planner, as_value_array(instance.values_b, "values_b")),
            instance.domain_size,
        )

    def _fingerprint(self, ctx: _FagmsContext) -> dict:
        return {
            "estimator": "fagms",
            "k": ctx.pairs.k,
            "m": ctx.pairs.m,
            "hash pairs digest": fingerprint_digest(ctx.pairs.to_dict()),
        }

    def collect(self, ctx: _FagmsContext, s: int) -> PartialAggregate:
        partial = PartialAggregate("fagms", self._fingerprint(ctx))
        for label, values in (("A", ctx.splits_a[s]), ("B", ctx.splits_b[s])):
            sketch = FastAGMSSketch(ctx.pairs)
            sketch.update_batch(values)
            partial.add_array(f"{label}:counts", sketch.counts)
            partial.counters[f"{label}:num_reports"] = float(values.size)
        return partial

    def finalize(self, ctx: _FagmsContext, merged: PartialAggregate) -> EstimateResult:
        sketches = {}
        for label in ("A", "B"):
            sketch = FastAGMSSketch(ctx.pairs)
            sketch.counts = merged.arrays[f"{label}:counts"].copy()
            sketch.total_weight = merged.counters[f"{label}:num_reports"]
            sketches[label] = sketch
        start = time.perf_counter()
        estimate = sketches["A"].inner_product(sketches["B"])
        online = time.perf_counter() - start
        n = int(
            merged.counters["A:num_reports"] + merged.counters["B:num_reports"]
        )
        raw_bits = max(1, math.ceil(math.log2(ctx.domain_size)))
        return EstimateResult(
            estimate=estimate,
            online_seconds=online,
            uplink_bits=n * raw_bits,
            sketch_bytes=sketches["A"].memory_bytes() + sketches["B"].memory_bytes(),
        )


# ======================================================================
# Frequency-oracle baselines (k-RR, OLH, FLH, Apple-HCMS)
# ======================================================================
#: Mergeable server state per oracle class: ``{suffix: (attr, op)}``.
#: ``attr`` is the oracle attribute holding the array (lists of arrays —
#: OLH's per-user stores — are consolidated and merge by concatenation).
_ORACLE_STATE: Dict[str, Dict[str, Tuple[str, str]]] = {
    "krr": {"report_counts": ("_report_counts", "sum")},
    "flh": {"counts": ("_counts", "sum")},
    "hcms": {"raw": ("_raw", "sum")},
    "olh": {
        "hash_a": ("_hash_a", "concat"),
        "hash_b": ("_hash_b", "concat"),
        "reports": ("_reports", "concat"),
    },
}


def _jsonable_state(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable_state(v) for v in value]
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return value


def _oracle_extra_fingerprint(oracle) -> dict:
    """Published state the shards must share, straight from the oracle.

    Derived from :meth:`FrequencyOracle._merge_fields` — the same single
    source of truth the in-memory merge gate validates — so the wire
    fingerprint can never drift from the in-memory checks: a new
    compatibility field added to an oracle's ``_merge_fields`` is
    fingerprinted here automatically.  Array-valued state (hash pools,
    hash pairs) is digested; scalars travel as-is.
    """
    extra = {}
    for name, (mine, _) in oracle._merge_fields(oracle).items():
        if isinstance(mine, np.ndarray) or (
            isinstance(mine, (list, tuple))
            and any(
                isinstance(v, np.ndarray) or hasattr(v, "to_dict") for v in mine
            )
        ) or hasattr(mine, "to_dict"):
            extra[f"{name} digest"] = fingerprint_digest(_jsonable_state(mine))
        else:
            extra[name] = mine
    return extra


class _OracleContext:
    __slots__ = (
        "key",
        "estimator",
        "domain_size",
        "epsilon",
        "oracle_seeds",
        "splits_a",
        "splits_b",
        "shard_seeds",
        "fingerprint",
    )

    def __init__(self, **attrs):
        for name, value in attrs.items():
            setattr(self, name, value)


class _OracleDriver:
    """Shards a ``_FrequencyOracleEstimator`` method's server state."""

    def __init__(self, key: str) -> None:
        self.key = key

    def _make(self, ctx: _OracleContext, seed):
        return ctx.estimator._make_oracle(ctx.domain_size, ctx.epsilon, seed)

    def prepare(self, estimator, instance, epsilon, num_shards, seed, strategy):
        rng = ensure_rng(seed)
        # Serial draw order: one derived oracle seed per attribute.
        oracle_seeds = (derive_seed(rng), derive_seed(rng))
        planner = ShardPlanner(num_shards, strategy=strategy)
        if num_shards == 1:
            shard_seeds: List = [None]  # each oracle uses its own stream
        else:
            shard_seeds = ShardPlanner(
                num_shards, strategy=strategy, seed=derive_seed(rng)
            ).shard_seeds()
        ctx = _OracleContext(
            key=self.key,
            estimator=estimator,
            domain_size=instance.domain_size,
            epsilon=float(epsilon),
            oracle_seeds=oracle_seeds,
            splits_a=_LazySplits(planner, as_value_array(instance.values_a, "values_a")),
            splits_b=_LazySplits(planner, as_value_array(instance.values_b, "values_b")),
            shard_seeds=shard_seeds,
            fingerprint=None,
        )
        probe = self._make(ctx, oracle_seeds[0])
        ctx.fingerprint = {
            "estimator": self.key,
            "domain_size": ctx.domain_size,
            "privacy budget (epsilon)": ctx.epsilon,
            "oracle seeds digest": fingerprint_digest(list(oracle_seeds)),
            **_oracle_extra_fingerprint(probe),
        }
        return ctx

    def _state_arrays(self, oracle) -> List[Tuple[str, np.ndarray, str]]:
        entries = []
        for suffix, (attr, op) in _ORACLE_STATE[self.key].items():
            value = getattr(oracle, attr)
            if isinstance(value, list):  # OLH per-user stores
                value = (
                    np.concatenate(value)
                    if value
                    else np.zeros(0, dtype=np.int64)
                )
            entries.append((suffix, value, op))
        return entries

    def collect(self, ctx: _OracleContext, s: int) -> PartialAggregate:
        shard_rng = (
            None if ctx.shard_seeds[s] is None else ensure_rng(ctx.shard_seeds[s])
        )
        partial = PartialAggregate(self.key, ctx.fingerprint)
        for label, seed, values in (
            ("A", ctx.oracle_seeds[0], ctx.splits_a[s]),
            ("B", ctx.oracle_seeds[1], ctx.splits_b[s]),
        ):
            oracle = self._make(ctx, seed)
            oracle.collect(values, rng=shard_rng)
            for suffix, array, op in self._state_arrays(oracle):
                partial.add_array(f"{label}:{suffix}", array, op=op)
            partial.counters[f"{label}:num_reports"] = float(oracle.num_reports)
        return partial

    def _restore(self, ctx: _OracleContext, merged: PartialAggregate, label: str):
        oracle = self._make(ctx, ctx.oracle_seeds[0 if label == "A" else 1])
        for suffix, (attr, op) in _ORACLE_STATE[self.key].items():
            array = merged.arrays[f"{label}:{suffix}"].copy()
            if op == "concat":
                setattr(oracle, attr, [array])
            else:
                setattr(oracle, attr, array)
        if hasattr(oracle, "_dirty"):
            oracle._dirty = True
        oracle.num_reports = int(merged.counters[f"{label}:num_reports"])
        return oracle

    def finalize(self, ctx: _OracleContext, merged: PartialAggregate) -> EstimateResult:
        from ..mechanisms import estimate_join_via_frequencies

        oracle_a = self._restore(ctx, merged, "A")
        oracle_b = self._restore(ctx, merged, "B")
        start = time.perf_counter()
        estimate = estimate_join_via_frequencies(
            oracle_a, oracle_b, clip_negative=ctx.estimator.calibrate
        )
        online = time.perf_counter() - start
        return EstimateResult(
            estimate=estimate,
            online_seconds=online,
            uplink_bits=oracle_a.num_reports * oracle_a.report_bits
            + oracle_b.num_reports * oracle_b.report_bits,
            sketch_bytes=oracle_a.memory_bytes() + oracle_b.memory_bytes(),
            ledger=_two_stream_ledger(ctx.epsilon, ctx.estimator.name),
        )


# ======================================================================
# LDPJoinSketch+ — the two-round distributed protocol
# ======================================================================
class _PlusDriver:
    """Faithful distributed LDPJoinSketch+: merge, broadcast FI, merge again.

    Round 1: every shard splits *its own* users (sample / group 1 /
    group 2, per-shard permutation), FAP-free-encodes its phase-1 sample
    against the shared ``pairs1`` and emits a phase-1 partial.  The
    coordinator reduces them, scans for frequent items and broadcasts
    ``FI``.  Round 2: each shard FAP-encodes its two phase-2 groups
    against the shared ``pairs2`` and emits a phase-2 partial; the
    coordinator reduces and runs Algorithm 5 on the merged sketches.

    Not expressible as a single-round :class:`ShardRun` (the FI broadcast
    is a barrier), so the driver owns the whole flow; both reduction
    rounds honour the requested merge topology.
    """

    rounds = 2

    def run(
        self,
        estimator,
        instance,
        epsilon,
        num_shards,
        seed,
        strategy,
        merge,
        *,
        policy: Optional[RetryPolicy] = None,
        degraded: bool = False,
    ) -> EstimateResult:
        from ..api.estimators import run_join_sketch_plus

        params = SketchParams(estimator.k, estimator.m, epsilon)
        phase1 = (
            SketchParams(estimator.k, estimator.phase1_m, epsilon)
            if estimator.phase1_m is not None
            else params
        )
        if merge not in _MERGERS:
            raise ParameterError(
                f"merge must be one of {tuple(_MERGERS)}, got {merge!r}"
            )
        if num_shards == 1:
            # Identity plan: the serial two-phase run *is* the single
            # aggregator.
            def serial() -> EstimateResult:
                fault_point(
                    "shard.collect", shard=0, method="ldp-join-sketch-plus"
                )
                return run_join_sketch_plus(
                    instance.values_a,
                    instance.values_b,
                    instance.domain_size,
                    params,
                    sample_rate=estimator.sample_rate,
                    threshold=estimator.threshold,
                    phase1_params=(
                        phase1 if estimator.phase1_m is not None else None
                    ),
                    paper_faithful_correction=estimator.paper_faithful_correction,
                    seed=seed,
                )

            try:
                if policy is None:
                    return serial()
                return policy.call(
                    serial,
                    operation="ldp-join-sketch-plus: collect shard 0",
                    reset=_generator_reset(seed),
                )
            except _SHARD_LOSS_ERRORS as error:
                if degraded:
                    raise ShardLostError(
                        "all 1 shard partial(s) lost; nothing to merge",
                        lost=[0],
                    ) from error
                raise
        protocol = LDPJoinSketchPlus(
            params,
            sample_rate=estimator.sample_rate,
            threshold=estimator.threshold,
            phase1_params=phase1,
            paper_faithful_correction=estimator.paper_faithful_correction,
        )
        arr_a = as_value_array(instance.values_a, "values_a")
        arr_b = as_value_array(instance.values_b, "values_b")
        rng = ensure_rng(seed)
        pairs1 = HashPairs(phase1.k, phase1.m, spawn(rng))
        pairs2 = HashPairs(params.k, params.m, spawn(rng))
        planner = ShardPlanner(num_shards, strategy=strategy)
        shard_rngs = [
            ensure_rng(s)
            for s in ShardPlanner(
                num_shards, strategy=strategy, seed=derive_seed(rng)
            ).shard_seeds()
        ]
        splits_a = planner.split(arr_a)
        splits_b = planner.split(arr_b)
        fingerprint = {
            "estimator": "ldp-join-sketch-plus",
            "k": params.k,
            "m": params.m,
            "phase1 m": phase1.m,
            "privacy budget (epsilon)": float(epsilon),
            "hash pairs digest": fingerprint_digest(
                [pairs1.to_dict(), pairs2.to_dict()]
            ),
        }
        # Phase partials never mix: the round travels in the fingerprint,
        # so a tree fed phase-1 and phase-2 partials refuses outright.
        fingerprint1 = {**fingerprint, "round": 1}
        fingerprint2 = {**fingerprint, "round": 2}

        start = time.perf_counter()
        lost: Set[int] = set()

        # ---------------- Round 1: phase-1 partials -------------------
        def round1_shard(s: int) -> Tuple[PartialAggregate, Tuple]:
            rs = shard_rngs[s]
            fault_point(
                "shard.collect", shard=s, method="ldp-join-sketch-plus", round=1
            )
            sample_a, ga1, ga2 = protocol._split_users(splits_a[s], rs, "A")
            sample_b, gb1, gb2 = protocol._split_users(splits_b[s], rs, "B")
            partial = PartialAggregate("ldp-join-sketch-plus", fingerprint1)
            for label, sample in (("SA", sample_a), ("SB", sample_b)):
                batch = encode_reports(sample, phase1, pairs1, rs)
                raw = np.zeros((phase1.k, phase1.m), dtype=np.int64)
                scatter_add_signed_units(raw, (batch.rows, batch.cols), batch.ys)
                partial.add_array(f"{label}:raw", raw)
                partial.counters[f"{label}:num_reports"] = float(sample.size)
            for name, group in (
                ("A1", ga1), ("A2", ga2), ("B1", gb1), ("B2", gb2)
            ):
                partial.counters[f"{name}:size"] = float(group.size)
            return partial, (ga1, ga2, gb1, gb2)

        groups: List[Optional[Tuple]] = [None] * num_shards
        round1: List[Optional[PartialAggregate]] = [None] * num_shards
        for s in range(num_shards):
            try:
                if policy is None:
                    round1[s], groups[s] = round1_shard(s)
                else:
                    round1[s], groups[s] = policy.call(
                        lambda s=s: round1_shard(s),
                        operation=f"ldp-join-sketch-plus: round-1 shard {s}",
                        reset=_generator_reset(shard_rngs[s]),
                    )
            except _SHARD_LOSS_ERRORS:
                # A shard that never produced a phase-1 partial is out of
                # the protocol entirely: it holds no groups for round 2.
                if not degraded:
                    raise
                lost.add(s)
        if lost:
            _require_surviving_coverage(
                [int(splits_a[s].size) for s in range(num_shards)],
                [int(splits_b[s].size) for s in range(num_shards)],
                lost,
            )
        merged1 = _reduce(round1, merge, degraded=bool(lost))

        # ---------------- Coordinator: FI broadcast -------------------
        def _phase1_sketch(label: str) -> LDPJoinSketch:
            counts = merged1.arrays[f"{label}:raw"].astype(np.float64)
            counts *= phase1.scale
            fwht_inplace(counts)
            return LDPJoinSketch(
                phase1, pairs1, counts,
                int(merged1.counters[f"{label}:num_reports"]),
            )

        sketch_sa = _phase1_sketch("SA")
        sketch_sb = _phase1_sketch("SB")
        domain = require_positive_int("domain_size", instance.domain_size)
        fi_a = find_frequent_items(
            sketch_sa, domain, protocol.threshold, method=protocol.fi_method
        )
        fi_b = find_frequent_items(
            sketch_sb, domain, protocol.threshold, method=protocol.fi_method
        )
        frequent_items = np.union1d(fi_a, fi_b)
        # The frequent-item set is now *broadcast*: round-2 losses cannot
        # retract it, but every downstream statistic (sample sizes, high
        # masses, group sizes) is computed after round 2, over the final
        # survivor set, so the accounting stays self-consistent.

        # ---------------- Round 2: phase-2 FAP partials ---------------
        def round2_shard(s: int) -> PartialAggregate:
            rs = shard_rngs[s]
            ga1, ga2, gb1, gb2 = groups[s]
            fault_point(
                "shard.collect", shard=s, method="ldp-join-sketch-plus", round=2
            )
            partial = PartialAggregate("ldp-join-sketch-plus", fingerprint2)
            # Same per-shard encode order as the serial protocol:
            # LA, LB, HA, HB.
            for label, group, mode in (
                ("LA", ga1, MODE_LOW),
                ("LB", gb1, MODE_LOW),
                ("HA", ga2, MODE_HIGH),
                ("HB", gb2, MODE_HIGH),
            ):
                batch = fap_encode_reports(
                    group, mode, params, pairs2, frequent_items, rs
                )
                raw = np.zeros((params.k, params.m), dtype=np.int64)
                scatter_add_signed_units(raw, (batch.rows, batch.cols), batch.ys)
                partial.add_array(f"{label}:raw", raw)
                partial.counters[f"{label}:num_reports"] = float(group.size)
            return partial

        lost_in_round1 = set(lost)
        round2: List[Optional[PartialAggregate]] = [None] * num_shards
        for s in range(num_shards):
            if s in lost:
                continue
            try:
                if policy is None:
                    round2[s] = round2_shard(s)
                else:
                    round2[s] = policy.call(
                        lambda s=s: round2_shard(s),
                        operation=f"ldp-join-sketch-plus: round-2 shard {s}",
                        reset=_generator_reset(shard_rngs[s]),
                    )
            except _SHARD_LOSS_ERRORS:
                if not degraded:
                    raise
                # Its phase-2 groups are gone; drop the shard's phase-1
                # contribution too, so sample/group accounting describes
                # one consistent survivor population.
                lost.add(s)
                round1[s] = None
        if lost != lost_in_round1:
            _require_surviving_coverage(
                [int(splits_a[s].size) for s in range(num_shards)],
                [int(splits_b[s].size) for s in range(num_shards)],
                lost,
            )
            merged1 = _reduce(round1, merge, degraded=True)
            sketch_sa = _phase1_sketch("SA")
            sketch_sb = _phase1_sketch("SB")
        merged2 = _reduce(round2, merge, degraded=bool(lost))

        # Covered population: in a fault-free run these equal the full
        # stream sizes exactly (the splits partition the population).
        covered_a = int(
            sum(splits_a[s].size for s in range(num_shards) if s not in lost)
        )
        covered_b = int(
            sum(splits_b[s].size for s in range(num_shards) if s not in lost)
        )
        sample_size_a = int(merged1.counters["SA:num_reports"])
        sample_size_b = int(merged1.counters["SB:num_reports"])
        high_mass_a = protocol._population_mass(
            sketch_sa, frequent_items, covered_a, sample_size_a
        )
        high_mass_b = protocol._population_mass(
            sketch_sb, frequent_items, covered_b, sample_size_b
        )

        def _phase2_sketch(label: str) -> LDPJoinSketch:
            counts = merged2.arrays[f"{label}:raw"].astype(np.float64)
            counts *= params.scale
            fwht_inplace(counts)
            return LDPJoinSketch(
                params, pairs2, counts,
                int(merged2.counters[f"{label}:num_reports"]),
            )

        size_a1 = int(merged1.counters["A1:size"])
        size_a2 = int(merged1.counters["A2:size"])
        size_b1 = int(merged1.counters["B1:size"])
        size_b2 = int(merged1.counters["B2:size"])
        low_est = protocol._join_est(
            _phase2_sketch("LA"),
            _phase2_sketch("LB"),
            nt_mass_a=protocol._group_mass(high_mass_a, size_a1, covered_a),
            nt_mass_b=protocol._group_mass(high_mass_b, size_b1, covered_b),
        )
        high_est = protocol._join_est(
            _phase2_sketch("HA"),
            _phase2_sketch("HB"),
            nt_mass_a=protocol._group_mass(
                covered_a - high_mass_a, size_a2, covered_a
            ),
            nt_mass_b=protocol._group_mass(
                covered_b - high_mass_b, size_b2, covered_b
            ),
        )
        low_scaled = (covered_a * covered_b) / (size_a1 * size_b1) * low_est
        high_scaled = (covered_a * covered_b) / (size_a2 * size_b2) * high_est
        offline = time.perf_counter() - start

        fi_bits = int(frequent_items.size) * max(
            1, int(np.ceil(np.log2(max(domain, 2))))
        )
        phase1_bits = phase1.report_bits * (sample_size_a + sample_size_b)
        phase2_bits = params.report_bits * (
            size_a1 + size_a2 + size_b1 + size_b2
        )
        ledger = BudgetLedger()
        for group_name in ("A-sample", "A1", "A2", "B-sample", "B1", "B2"):
            ledger.charge(group_name, params.epsilon, "LDPJoinSketch+/FAP")
        ledger.assert_within(PrivacySpec(params.epsilon))
        result = EstimateResult(
            estimate=low_scaled + high_scaled,
            offline_seconds=offline,
            uplink_bits=phase1_bits + phase2_bits,
            sketch_bytes=2 * phase1.k * phase1.m * 8
            + 4 * params.k * params.m * 8,
            ledger=ledger,
            extras={
                "low_estimate": low_scaled,
                "high_estimate": high_scaled,
                "frequent_items": frequent_items,
                "high_freq_mass_a": high_mass_a,
                "high_freq_mass_b": high_mass_b,
                "phase1_bits": phase1_bits,
                "phase2_bits": phase2_bits,
                "fi_broadcast_bits": fi_bits,
                "num_shards": num_shards,
            },
        )
        if lost:
            result = _apply_degradation(
                result,
                strategy=strategy,
                sizes_a=[int(splits_a[s].size) for s in range(num_shards)],
                sizes_b=[int(splits_b[s].size) for s in range(num_shards)],
                lost=sorted(lost),
            )
        return result


# ======================================================================
# Dispatch
# ======================================================================
def _driver_for(estimator):
    """The sharding driver of a registry estimator (by canonical key)."""
    key = resolve_estimator(estimator.name)
    if key == "ldp-join-sketch":
        return key, _SessionDriver("join")
    if key == "compass":
        return key, _SessionDriver("chain")
    if key == "fagms":
        return key, _FagmsDriver()
    if key in _ORACLE_STATE:
        return key, _OracleDriver(key)
    if key == "ldp-join-sketch-plus":
        return key, _PlusDriver()
    raise ParameterError(
        f"estimator {estimator.name!r} has no sharded-collection driver"
    )


def shardable_single_round(estimator) -> bool:
    """Whether ``estimator`` shards into one round of independent partials.

    ``False`` for multi-round protocols (LDPJoinSketch+, whose FI
    broadcast is a barrier) and estimators with no driver.
    """
    try:
        _, driver = _driver_for(estimator)
    except ParameterError:
        return False
    return getattr(driver, "rounds", 1) == 1


def pool_shardable(estimator) -> bool:
    """Whether a sweep pool should split this method to shard granularity.

    Requires a single-round driver *and* a cheap finaliser: the pool
    parent runs ``finalize`` inline while draining futures, so
    estimation-dominated methods (the frequency-oracle baselines, whose
    finalise scans the whole domain — OLH even Θ(n·|D|)) are better off
    as whole-trial worker tasks, where the estimation runs in the worker.
    Whole-trial execution still honours the unit's shard plan in-process,
    so the records are identical either way.
    """
    if not shardable_single_round(estimator):
        return False
    _, driver = _driver_for(estimator)
    return getattr(driver, "cheap_finalize", False)


def prepare_shard_run(
    estimator,
    instance,
    epsilon: float,
    *,
    num_shards: int,
    seed: RandomState = None,
    strategy: str = "hash",
) -> Optional[ShardRun]:
    """Plan a single-round sharded run (``None`` for multi-round methods).

    The returned :class:`ShardRun` is deterministic in its arguments:
    rebuild it anywhere (e.g. inside a pool worker) and ``collect(s)``
    produces the identical shard partial.  Methods whose distributed
    protocol needs a mid-run broadcast (LDPJoinSketch+) return ``None``;
    run those through :func:`estimate_sharded`.
    """
    num_shards = require_positive_int("num_shards", num_shards)
    key, driver = _driver_for(estimator)
    if getattr(driver, "rounds", 1) != 1:
        return None
    ctx = driver.prepare(estimator, instance, epsilon, num_shards, seed, strategy)
    return ShardRun(driver, ctx, num_shards, method=key)


def estimate_sharded(
    method,
    instance,
    epsilon: float,
    *,
    num_shards: int,
    seed: RandomState = None,
    strategy: str = "hash",
    merge: str = "tree",
    retries: Union[None, int, RetryPolicy] = None,
    fault_plan: Union[None, str, Path, FaultPlan] = None,
    degraded: bool = False,
    **options,
) -> EstimateResult:
    """Estimate ``instance``'s join size through ``num_shards`` aggregators.

    ``method`` is a registry name (``options`` forwarded to the factory)
    or a live estimator.  ``merge`` selects the reduction topology —
    ``"tree"`` (pairwise, what distributed aggregators run) or
    ``"sequential"`` (the single-aggregator left fold); both produce
    byte-identical results.  ``num_shards=1`` replays the unsharded
    ``estimate(instance, epsilon, seed)`` bit for bit.

    Fault tolerance:

    * ``retries`` — an attempt count or a
      :class:`~repro.reliability.RetryPolicy`; each shard collect is
      retried with its randomness restored per attempt, so a run whose
      faults the budget absorbs is **byte-identical** to a fault-free
      run (the headline invariant of the chaos suite).
    * ``fault_plan`` — a :class:`~repro.reliability.FaultPlan` (or the
      path of one saved as JSON) armed for the duration of this call;
      the way a reported failure is replayed deterministically.
    * ``degraded`` — when a shard is still lost after retries, merge the
      K−f survivors instead of raising: the estimate is rescaled by the
      planner's known per-shard client coverage and the loss is recorded
      in ``result.extras["degraded"]`` (``shards_lost``, ``coverage``,
      ``bound_factor``).  Losing every shard raises
      :class:`~repro.errors.ShardLostError` regardless.
    """
    estimator = get_estimator(method, **options) if isinstance(method, str) else method
    num_shards = require_positive_int("num_shards", num_shards)
    key, driver = _driver_for(estimator)
    policy = _as_policy(retries)
    plan = _as_plan(fault_plan)
    with injected(plan):
        if getattr(driver, "rounds", 1) != 1:
            return driver.run(
                estimator,
                instance,
                epsilon,
                num_shards,
                seed,
                strategy,
                merge,
                policy=policy,
                degraded=degraded,
            )
        ctx = driver.prepare(
            estimator, instance, epsilon, num_shards, seed, strategy
        )
        start = time.perf_counter()
        partials: List[Optional[PartialAggregate]] = []
        lost: List[int] = []
        for s in range(num_shards):
            try:
                partials.append(_collect_shard(driver, ctx, key, s, policy))
            except _SHARD_LOSS_ERRORS:
                if not degraded:
                    raise
                partials.append(None)
                lost.append(s)
        if lost:
            _require_surviving_coverage(*_shard_sizes(ctx, num_shards), lost)
        merged = _reduce(partials, merge, degraded=bool(lost))
        offline = time.perf_counter() - start
        result = driver.finalize(ctx, merged)
        if result.offline_seconds == 0.0:
            result = result.with_costs(offline_seconds=offline)
        if lost:
            sizes_a, sizes_b = _shard_sizes(ctx, num_shards)
            result = _apply_degradation(
                result,
                strategy=strategy,
                sizes_a=sizes_a,
                sizes_b=sizes_b,
                lost=lost,
            )
        return result
