"""The common interface of LDP frequency oracles.

A *frequency oracle* is the standard LDP primitive: each client perturbs
its private value locally, the server aggregates the reports and can later
estimate the frequency of any candidate value.  The paper evaluates three
published oracles (k-RR, FLH, Apple-HCMS; we also provide OLH, of which
FLH is the fast heuristic) as join-size baselines by summing the product
of estimated frequency vectors over the whole domain — the "cumulative
error" approach its Section II criticises.

Subclass contract
-----------------
``collect(values, rng)`` may be called repeatedly (streams of clients);
``frequencies(candidates)`` returns estimated *counts* (not proportions)
and must be unbiased for every published mechanism here; ``report_bits``
is the per-client uplink cost used by the Fig. 7 experiment.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from ..errors import IncompatibleSketchError, ProtocolError, require_merge_compatible
from ..rng import RandomState, ensure_rng
from ..validation import require_domain_values, require_positive_float, require_positive_int

__all__ = ["FrequencyOracle", "estimate_join_via_frequencies"]


class FrequencyOracle(abc.ABC):
    """Base class of every LDP frequency oracle."""

    #: Human-readable mechanism name (used by reports and figures).
    name: str = "abstract"

    def __init__(self, domain_size: int, epsilon: float, seed: RandomState = None) -> None:
        self.domain_size = require_positive_int("domain_size", domain_size, minimum=2)
        self.epsilon = require_positive_float("epsilon", epsilon)
        self._rng = ensure_rng(seed)
        self.num_reports = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def collect(self, values: Iterable[int], rng: RandomState = None) -> None:
        """Perturb one batch of client values and fold them into the state."""
        arr = require_domain_values(values, self.domain_size)
        if arr.size == 0:
            return
        generator = self._rng if rng is None else ensure_rng(rng)
        self._collect(arr, generator)
        self.num_reports += int(arr.size)

    @abc.abstractmethod
    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        """Mechanism-specific perturbation + aggregation."""

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def merge(self, other: "FrequencyOracle") -> "FrequencyOracle":
        """Fold another shard's collected state into this oracle.

        Server-side state of every oracle here is a linear aggregate of
        its reports, so shards that collected disjoint cohorts under the
        same configuration merge losslessly — the sharded-collection
        property :class:`repro.api.JoinSession` relies on, extended to
        the baselines.  Raises :class:`IncompatibleSketchError` on any
        mismatch (type, domain, budget, or mechanism-specific
        configuration — every oracle's extra requirements are declared
        via :meth:`_merge_fields` and validated through the shared
        :func:`repro.errors.require_merge_compatible` gate, so no
        subclass can forget a check).  Returns self.
        """
        if type(other) is not type(self):
            raise IncompatibleSketchError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        fields = {
            "domain_size": (self.domain_size, other.domain_size),
            "privacy budget (epsilon)": (self.epsilon, other.epsilon),
        }
        fields.update(self._merge_fields(other))
        require_merge_compatible(f"{type(self).__name__} shards", **fields)
        self._merge(other)
        self.num_reports += other.num_reports
        return self

    def _merge_fields(self, other: "FrequencyOracle") -> dict:
        """Mechanism-specific ``{name: (mine, theirs)}`` compatibility pairs.

        Subclasses with published randomness (hash pools, hash pairs) or
        extra shape parameters (``g``, ``pool_size``, ``k``, ``m``) return
        them here; the base :meth:`merge` validates everything in one
        place before any state is touched.
        """
        return {}

    def _merge(self, other: "FrequencyOracle") -> None:
        """Mechanism-specific state merge (``num_reports`` handled by caller)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded merging"
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def frequencies(self, candidates: Iterable[int]) -> np.ndarray:
        """Estimated counts for ``candidates`` (float64, may be negative)."""
        if self.num_reports == 0:
            raise ProtocolError(f"{self.name}: no reports collected yet")
        arr = require_domain_values(candidates, self.domain_size, "candidates")
        return self._frequencies(arr)

    @abc.abstractmethod
    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        """Mechanism-specific frequency estimation."""

    def all_frequencies(self) -> np.ndarray:
        """Estimated counts for the entire domain."""
        return self.frequencies(np.arange(self.domain_size, dtype=np.int64))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def report_bits(self) -> int:
        """Uplink bits one client transmits."""

    def memory_bytes(self) -> int:
        """Server-side state size in bytes (subclasses refine)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(domain_size={self.domain_size}, "
            f"epsilon={self.epsilon:g}, num_reports={self.num_reports})"
        )


def estimate_join_via_frequencies(
    oracle_a: FrequencyOracle,
    oracle_b: FrequencyOracle,
    *,
    clip_negative: bool = False,
    chunk_size: int = 262_144,
) -> float:
    """Join-size estimate ``sum_d f^_A(d) * f^_B(d)`` over the full domain.

    This is how the paper turns frequency oracles (k-RR, FLH, Apple-HCMS)
    into join-size baselines.  The sum accumulates one estimation error per
    domain value — the cumulative-error weakness the sketch product avoids.

    Parameters
    ----------
    clip_negative:
        Clamp negative frequency estimates to zero before multiplying.
        The paper's baselines use "calibrated" frequency vectors; we keep
        the unclipped product as the default (unbiased) and expose the
        clipped variant for ablation.
    chunk_size:
        Candidates are processed in chunks to bound the memory of
        mechanisms whose estimation materialises per-candidate tables.
    """
    if oracle_a.domain_size != oracle_b.domain_size:
        raise ProtocolError(
            f"domain mismatch: {oracle_a.domain_size} vs {oracle_b.domain_size}"
        )
    total = 0.0
    domain = oracle_a.domain_size
    for start in range(0, domain, chunk_size):
        candidates = np.arange(start, min(start + chunk_size, domain), dtype=np.int64)
        fa = oracle_a.frequencies(candidates)
        fb = oracle_b.frequencies(candidates)
        if clip_negative:
            fa = np.maximum(fa, 0.0)
            fb = np.maximum(fb, 0.0)
        total += float(np.dot(fa, fb))
    return total
