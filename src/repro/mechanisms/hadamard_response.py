"""Hadamard Response (HR).

Hadamard Response (Acharya, Sun, Zhang — AISTATS 2019) is a
communication-efficient mechanism for large domains built on the same
Sylvester matrices as our sketches.  Each value ``d`` owns the index set
``S_d = {j : H_K[d + 1, j] = 1}`` (row ``d + 1`` of the order-``K``
Hadamard matrix, ``K >= 2 |D|``; row 0 is excluded because it is all
ones).  The client reports

* a uniform member of ``S_d`` with probability ``e^eps / (e^eps + 1)``,
* a uniform member of the complement with probability ``1 / (e^eps + 1)``.

Because ``|S_d| = K/2`` for every ``d``, the output distribution of any
single report is a two-level function over ``[K]``, and

.. math::  \\Pr[y \\in S_d] = \\frac{e^\\epsilon}{e^\\epsilon + 1}
           \\quad\\text{vs}\\quad
           \\Pr[y \\in S_d \\mid d' \\ne d] = \\tfrac12 \\cdot
           \\frac{e^\\epsilon}{e^\\epsilon+1} + \\tfrac12 \\cdot
           \\frac{1}{e^\\epsilon+1} = \\tfrac12 ,

(rows of a Hadamard matrix agree on exactly half their positions), giving
the unbiased estimator

.. math::  \\hat f(d) = \\frac{C_d - n/2}{p - 1/2}, \\qquad
           C_d = \\#\\{i : y_i \\in S_{d}\\}, \\quad
           p = \\frac{e^\\epsilon}{e^\\epsilon + 1}.

Counting ``C_d`` for every candidate is one Walsh--Hadamard transform of
the report histogram, so whole-domain estimation costs ``O(K log K)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..rng import RandomState
from ..transform.hadamard import fwht, hadamard_entry
from .base import FrequencyOracle

__all__ = ["HadamardResponseOracle"]


class HadamardResponseOracle(FrequencyOracle):
    """Hadamard Response frequency oracle over ``[0, domain_size)``."""

    name = "HR"

    def __init__(self, domain_size: int, epsilon: float, seed: RandomState = None) -> None:
        super().__init__(domain_size, epsilon, seed)
        # Need K >= domain_size + 1 rows (row 0 is reserved); power of two.
        self.order = 1 << max(1, int(math.ceil(math.log2(self.domain_size + 1))))
        self.p = math.exp(min(epsilon, 700)) / (math.exp(min(epsilon, 700)) + 1.0)
        self._report_histogram = np.zeros(self.order, dtype=np.int64)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        n = values.size
        rows = values + 1  # row 0 of H is all-ones and unusable
        in_set = rng.random(n) < self.p
        # Sample uniformly from S_d (or its complement) by rejection-free
        # indexing: positions with H[row, j] = +1 are exactly those where
        # popcount(row & j) is even.  Draw a uniform j until the sign
        # matches; two draws suffice in expectation, so draw in rounds.
        out = np.empty(n, dtype=np.int64)
        pending = np.arange(n)
        while pending.size:
            draws = rng.integers(0, self.order, size=pending.size)
            signs = hadamard_entry(rows[pending], draws, self.order)
            want = np.where(in_set[pending], 1, -1)
            matched = signs == want
            out[pending[matched]] = draws[matched]
            pending = pending[~matched]
        self._report_histogram += np.bincount(out, minlength=self.order)

    def _merge(self, other: "HadamardResponseOracle") -> None:
        self._report_histogram += other._report_histogram

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        # C_d = #{i : H[d+1, y_i] = 1} = (n + sum_i H[d+1, y_i]) / 2 and
        # the vector of sums over all rows is the WHT of the histogram.
        transformed = fwht(self._report_histogram.astype(np.float64))
        sums = transformed[candidates + 1]
        support = 0.5 * (self.num_reports + sums)
        return (support - self.num_reports / 2.0) / (self.p - 0.5)

    @property
    def report_bits(self) -> int:
        """One index into the order-``K`` Hadamard matrix."""
        return max(1, int(math.ceil(math.log2(self.order))))

    def memory_bytes(self) -> int:
        """The report histogram."""
        return int(self._report_histogram.nbytes)
