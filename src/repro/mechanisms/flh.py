"""Fast Local Hashing (FLH).

FLH (Cormode, Maddock, Maple — VLDB 2021) is the heuristic fast variant of
OLH the paper benchmarks: instead of a fresh hash per client, clients pick
one of ``pool_size`` pre-agreed hash functions ``h_1 .. h_K`` uniformly at
random, hash their value into ``[g]`` and GRR-perturb it.  The server
keeps a ``(K, g)`` count matrix ``C`` — report ``(kappa, y)`` increments
``C[kappa, y]`` — so the support of a candidate ``d`` is read off with
``K`` table lookups instead of ``n``:

.. math::  S(d) = \\sum_{\\kappa} C[\\kappa, h_\\kappa(d)], \\qquad
           \\hat f(d) = \\frac{S(d) - n/g}{p - 1/g} .

The estimator matches OLH's in expectation (over the pool choice); the
finite pool trades a small accuracy loss for estimation time independent
of ``n`` — "sacrifices accuracy to achieve computational gains", as the
paper puts it.
"""

from __future__ import annotations

import math

import numpy as np

from ..accumulate import scatter_count
from ..backend import get_backend
from ..hashing.kwise import MERSENNE_PRIME_31
from ..privacy.response import grr_perturb, grr_probabilities
from ..rng import RandomState
from ..validation import require_positive_int
from .base import FrequencyOracle

__all__ = ["FLHOracle"]


class FLHOracle(FrequencyOracle):
    """FLH frequency oracle with a finite shared hash pool."""

    name = "FLH"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        seed: RandomState = None,
        *,
        g: int = None,
        pool_size: int = 512,
    ) -> None:
        super().__init__(domain_size, epsilon, seed)
        self.g = require_positive_int("g", g, minimum=2) if g is not None else max(
            2, int(round(math.exp(min(epsilon, 50)) + 1))
        )
        self.pool_size = require_positive_int("pool_size", pool_size)
        self.p, self.q = grr_probabilities(epsilon, self.g)
        # The shared hash pool: ((a_kappa * x + b_kappa) mod prime) mod g.
        self._pool_a = self._rng.integers(1, MERSENNE_PRIME_31, size=self.pool_size, dtype=np.int64)
        self._pool_b = self._rng.integers(0, MERSENNE_PRIME_31, size=self.pool_size, dtype=np.int64)
        self._counts = np.zeros((self.pool_size, self.g), dtype=np.int64)

    def _pool_hash(self, pool_index: np.ndarray, values: np.ndarray) -> np.ndarray:
        prime = np.uint64(MERSENNE_PRIME_31)
        a = self._pool_a[pool_index].astype(np.uint64)
        b = self._pool_b[pool_index].astype(np.uint64)
        mixed = (a * values.astype(np.uint64) + b) % prime
        return (mixed % np.uint64(self.g)).astype(np.int64)

    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        kappa = rng.integers(0, self.pool_size, size=values.size)
        hashed = self._pool_hash(kappa, values)
        reports = grr_perturb(hashed, self.g, self.epsilon, rng)
        scatter_count(self._counts, (kappa, reports))

    def _merge_fields(self, other: "FLHOracle") -> dict:
        return {
            "g": (self.g, other.g),
            "pool_size": (self.pool_size, other.pool_size),
            "hash pool": (
                (self._pool_a, self._pool_b),
                (other._pool_a, other._pool_b),
            ),
        }

    def _merge(self, other: "FLHOracle") -> None:
        self._counts += other._counts

    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        # Same support-scan kernel as OLH (the shared local-hashing
        # family), in counts mode: pool-sized table lookups per
        # candidate instead of a per-user comparison scan.
        support = get_backend().oracle_support_scan(
            self._pool_a, self._pool_b, candidates, self.g, counts=self._counts
        )
        return (support - self.num_reports / self.g) / (self.p - 1.0 / self.g)

    @property
    def report_bits(self) -> int:
        """Pool index plus the GRR report."""
        return max(1, math.ceil(math.log2(self.pool_size))) + max(
            1, math.ceil(math.log2(self.g))
        )

    def memory_bytes(self) -> int:
        """The ``(pool_size, g)`` count matrix."""
        return int(self._counts.nbytes)
