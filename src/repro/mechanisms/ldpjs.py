"""LDPJoinSketch as a frequency oracle.

Theorem 7 shows the LDPJoinSketch gives unbiased frequency estimates, and
Fig. 14 benchmarks it against the dedicated frequency oracles.  This
adapter wraps the core client/server pair (Algorithms 1-2) behind the
:class:`~repro.mechanisms.base.FrequencyOracle` interface so the
frequency-estimation experiments treat all mechanisms uniformly.
"""

from __future__ import annotations

import numpy as np

from ..core.client import encode_reports_into
from ..core.params import SketchParams
from ..core.server import LDPJoinSketch
from ..hashing import HashPairs
from ..rng import RandomState, spawn
from ..transform.hadamard import fwht
from .base import FrequencyOracle

__all__ = ["LDPJoinSketchOracle"]


class LDPJoinSketchOracle(FrequencyOracle):
    """Frequency oracle backed by an LDPJoinSketch."""

    name = "LDPJoinSketch"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        seed: RandomState = None,
        *,
        k: int = 18,
        m: int = 1024,
    ) -> None:
        super().__init__(domain_size, epsilon, seed)
        self.params = SketchParams(k, m, epsilon)
        self.pairs = HashPairs(k, m, spawn(self._rng))
        self._raw = np.zeros((k, m), dtype=np.int64)
        self._dirty = False
        self._sketch: LDPJoinSketch = LDPJoinSketch(self.params, self.pairs)

    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        # Fused encode→accumulate: no O(n) report arrays, one bincount
        # pass per chunk; the debiasing scale is applied in sketch().
        encode_reports_into(values, self.params, self.pairs, self._raw, rng)
        self._dirty = True

    def _merge_fields(self, other: "LDPJoinSketchOracle") -> dict:
        return {
            "k": (self.params.k, other.params.k),
            "m": (self.params.m, other.params.m),
            "hash pairs": (self.pairs, other.pairs),
        }

    def _merge(self, other: "LDPJoinSketchOracle") -> None:
        self._raw += other._raw
        self._dirty = True

    def sketch(self) -> LDPJoinSketch:
        """The constructed (transformed) sketch for direct use."""
        if self._dirty:
            self._sketch = LDPJoinSketch(
                self.params,
                self.pairs,
                fwht(self._raw.astype(np.float64) * self.params.scale),
                self.num_reports,
            )
            self._dirty = False
        return self._sketch

    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        return self.sketch().frequencies(candidates)

    @property
    def report_bits(self) -> int:
        """Sign bit plus row and column indices."""
        return self.params.report_bits

    def memory_bytes(self) -> int:
        """The ``(k, m)`` sketch."""
        return int(self._raw.nbytes)
