"""k-ary Randomized Response (k-RR / GRR).

The canonical direct mechanism (Kairouz et al.; Wang et al., USENIX
Security 2017): each client reports its true value with probability
``p = e^eps / (e^eps + g - 1)`` and a uniformly random *other* value
otherwise.  The server debiases observed counts ``c(d)`` to

.. math::  \\hat f(d) = \\frac{c(d) - n q}{p - q},

which is unbiased.  On the large join domains of the paper the keep
probability ``p`` collapses towards ``1/g``, which is exactly why k-RR
performs poorly there — the behaviour Figs. 5, 8 and 14 exhibit.
"""

from __future__ import annotations

import math

import numpy as np

from ..privacy.response import grr_perturb, grr_probabilities
from ..rng import RandomState
from .base import FrequencyOracle

__all__ = ["KRROracle"]


class KRROracle(FrequencyOracle):
    """k-RR frequency oracle over ``[0, domain_size)``."""

    name = "k-RR"

    def __init__(self, domain_size: int, epsilon: float, seed: RandomState = None) -> None:
        super().__init__(domain_size, epsilon, seed)
        self.p, self.q = grr_probabilities(epsilon, self.domain_size)
        self._report_counts = np.zeros(self.domain_size, dtype=np.int64)

    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        reports = grr_perturb(values, self.domain_size, self.epsilon, rng)
        self._report_counts += np.bincount(reports, minlength=self.domain_size)

    def _merge(self, other: "KRROracle") -> None:
        self._report_counts += other._report_counts

    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        observed = self._report_counts[candidates].astype(np.float64)
        return (observed - self.num_reports * self.q) / (self.p - self.q)

    @property
    def report_bits(self) -> int:
        """One domain value per client."""
        return max(1, math.ceil(math.log2(self.domain_size)))

    def memory_bytes(self) -> int:
        """Size of the report-count vector."""
        return int(self._report_counts.nbytes)
