"""Apple's Hadamard Count-Mean Sketch (HCMS).

HCMS ("Learning with Privacy at Scale", Apple 2017) is the closest
published relative of LDPJoinSketch — the paper notes the client sides are
identical except for the encoding sign.  Each client:

1. samples a row ``j ~ U[k]`` and column ``l ~ U[m]``;
2. encodes its value as the (unsigned) one-hot ``v[h_j(d)] = 1``;
3. transmits the sign-channel-perturbed Hadamard sample
   ``y = b * H_m[h_j(d), l]``.

The server accumulates ``k * c_eps * y`` into ``[j, l]``, inverts the
transform per row, and answers point queries with the Count-Mean debiasing
(:func:`repro.sketches.count_mean.count_mean_frequencies`).  Used as a
frequency oracle (Fig. 14) and as a join-size baseline via frequency
inner products (Figs. 5-9).
"""

from __future__ import annotations

import numpy as np

from ..accumulate import scatter_add_signed_units
from ..hashing import HashPairs
from ..privacy.response import c_epsilon, flip_probability
from ..rng import RandomState, spawn
from ..sketches.count_mean import count_mean_frequencies
from ..transform.hadamard import fwht, sample_hadamard_entries
from ..validation import require_positive_int, require_power_of_two
from .base import FrequencyOracle

__all__ = ["HCMSOracle"]


class HCMSOracle(FrequencyOracle):
    """Apple-HCMS frequency oracle with a ``(k, m)`` sketch."""

    name = "Apple-HCMS"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        seed: RandomState = None,
        *,
        k: int = 18,
        m: int = 1024,
    ) -> None:
        super().__init__(domain_size, epsilon, seed)
        self.k = require_positive_int("k", k)
        self.m = require_power_of_two("m", m)
        self.pairs = HashPairs(self.k, self.m, spawn(self._rng))
        self._raw = np.zeros((self.k, self.m), dtype=np.int64)
        self._dirty = False
        self._transformed = np.zeros((self.k, self.m), dtype=np.float64)

    # ------------------------------------------------------------------
    # Client + aggregation
    # ------------------------------------------------------------------
    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        n = values.size
        rows = rng.integers(0, self.k, size=n)
        cols = rng.integers(0, self.m, size=n)
        buckets = self.pairs.bucket_rows(rows, values)
        w = sample_hadamard_entries(buckets, cols, self.m)
        flips = rng.random(n) < flip_probability(self.epsilon)
        ys = np.where(flips, -w, w)
        # Integer accumulation; the debiasing scale is applied in _sketch().
        scatter_add_signed_units(self._raw, (rows, cols), ys)
        self._dirty = True

    def _merge_fields(self, other: "HCMSOracle") -> dict:
        return {
            "k": (self.k, other.k),
            "m": (self.m, other.m),
            "hash pairs": (self.pairs, other.pairs),
        }

    def _merge(self, other: "HCMSOracle") -> None:
        self._raw += other._raw
        self._dirty = True

    def _sketch(self) -> np.ndarray:
        if self._dirty:
            scale = self.k * c_epsilon(self.epsilon)
            self._transformed = fwht(self._raw.astype(np.float64) * scale)
            self._dirty = False
        return self._transformed

    # ------------------------------------------------------------------
    # Server read-out
    # ------------------------------------------------------------------
    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        return count_mean_frequencies(
            self._sketch(), self.pairs, float(self.num_reports), candidates
        )

    @property
    def report_bits(self) -> int:
        """One sign bit plus the row and column indices."""
        return (
            1
            + max(1, int(np.ceil(np.log2(self.k))))
            + max(1, int(np.ceil(np.log2(self.m))))
        )

    def memory_bytes(self) -> int:
        """The ``(k, m)`` sketch."""
        return int(self._raw.nbytes)
