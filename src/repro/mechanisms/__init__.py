"""Competitor LDP frequency oracles used in the paper's evaluation.

All mechanisms implement the :class:`FrequencyOracle` interface — simulate
clients (`collect`), estimate frequencies server-side (`frequencies` /
`all_frequencies`) — so the experiment harness can treat them uniformly
and derive join-size estimates from frequency-vector inner products
(:func:`estimate_join_via_frequencies`), exactly the way the paper employs
them as join-size baselines.
"""

from .base import FrequencyOracle, estimate_join_via_frequencies
from .krr import KRROracle
from .olh import OLHOracle
from .flh import FLHOracle
from .hcms import HCMSOracle
from .ldpjs import LDPJoinSketchOracle
from .oue import OUEOracle
from .hadamard_response import HadamardResponseOracle

__all__ = [
    "FrequencyOracle",
    "estimate_join_via_frequencies",
    "KRROracle",
    "OLHOracle",
    "FLHOracle",
    "HCMSOracle",
    "LDPJoinSketchOracle",
    "OUEOracle",
    "HadamardResponseOracle",
]
