"""Optimal Local Hashing (OLH).

OLH (Wang et al., USENIX Security 2017) shrinks the GRR domain by local
hashing: client ``i`` owns a random pairwise-independent hash
``H_i : D -> [g]`` with ``g = round(e^eps + 1)`` (the variance-optimal
choice), hashes its value, and runs GRR over ``[g]``.  The server counts,
for each candidate ``d``, the *support*
``S(d) = #{i : y_i = H_i(d)}`` and debiases with

.. math::  \\hat f(d) = \\frac{S(d) - n/g}{p - 1/g},

using ``p = e^eps / (e^eps + g - 1)`` (with ``g = e^eps + 1``, ``p = 1/2``).

Exact OLH keeps one hash per user, so answering a candidate costs O(n):
the server-side estimation is Theta(n * |D|).  This implementation is
faithful but therefore intended for moderate sizes; FLH
(:mod:`repro.mechanisms.flh`) is the fast heuristic the paper benchmarks
at scale.  Per-candidate work is chunked to bound memory.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..backend import get_backend
from ..hashing.kwise import MERSENNE_PRIME_31
from ..privacy.response import grr_perturb, grr_probabilities
from ..rng import RandomState
from ..validation import require_positive_int
from .base import FrequencyOracle

__all__ = ["OLHOracle"]


class OLHOracle(FrequencyOracle):
    """Exact OLH frequency oracle (one fresh hash per client)."""

    name = "OLH"

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        seed: RandomState = None,
        *,
        g: int = None,
    ) -> None:
        super().__init__(domain_size, epsilon, seed)
        self.g = require_positive_int("g", g, minimum=2) if g is not None else max(
            2, int(round(math.exp(min(epsilon, 50)) + 1))
        )
        self.p, self.q = grr_probabilities(epsilon, self.g)
        # Per-user hash parameters ((a*x + b) mod prime) mod g and reports.
        self._hash_a: List[np.ndarray] = []
        self._hash_b: List[np.ndarray] = []
        self._reports: List[np.ndarray] = []

    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        n = values.size
        a = rng.integers(1, MERSENNE_PRIME_31, size=n, dtype=np.int64)
        b = rng.integers(0, MERSENNE_PRIME_31, size=n, dtype=np.int64)
        hashed = self._hash(a, b, values) % self.g
        reports = grr_perturb(hashed, self.g, self.epsilon, rng)
        self._hash_a.append(a)
        self._hash_b.append(b)
        self._reports.append(reports)

    def _merge_fields(self, other: "OLHOracle") -> dict:
        return {"g": (self.g, other.g)}

    def _merge(self, other: "OLHOracle") -> None:
        self._hash_a.extend(other._hash_a)
        self._hash_b.extend(other._hash_b)
        self._reports.extend(other._reports)

    @staticmethod
    def _hash(a: np.ndarray, b: np.ndarray, values: np.ndarray) -> np.ndarray:
        prime = np.uint64(MERSENNE_PRIME_31)
        mixed = (a.astype(np.uint64) * values.astype(np.uint64) + b.astype(np.uint64)) % prime
        return mixed.astype(np.int64)

    def _consolidated(self) -> tuple:
        """Concatenate the per-cohort arrays into one flat store.

        ``_collect``/``_merge`` append cohort-sized pieces; estimation
        wants one contiguous view so the support scan is a single chunked
        broadcast rather than a Python loop over cohorts.  The
        concatenation is cached back into the lists (length-one), so it
        costs one pass after any number of collects.
        """
        if len(self._hash_a) > 1:
            self._hash_a = [np.concatenate(self._hash_a)]
            self._hash_b = [np.concatenate(self._hash_b)]
            self._reports = [np.concatenate(self._reports)]
        if not self._hash_a:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        return self._hash_a[0], self._hash_b[0], self._reports[0]

    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        # The Theta(users x candidates) scan runs on the active compute
        # backend's support-scan kernel (chunked broadcast on NumPy,
        # compiled per-candidate loops under numba).
        a, b, reports = self._consolidated()
        support = get_backend().oracle_support_scan(
            a, b, candidates, self.g, reports=reports
        )
        return (support - self.num_reports / self.g) / (self.p - 1.0 / self.g)

    @property
    def report_bits(self) -> int:
        """Hash description (64-bit seed pair) plus the GRR report."""
        return 64 + max(1, math.ceil(math.log2(self.g)))

    def memory_bytes(self) -> int:
        """Per-user hash parameters and reports held by the server."""
        return int(sum(x.nbytes for x in self._hash_a + self._hash_b + self._reports))
