"""Optimized Unary Encoding (OUE).

OUE (Wang et al., USENIX Security 2017) is the variance-optimal unary
mechanism: the client one-hot encodes its value over the domain and
perturbs each bit independently — the true bit survives with probability
``p = 1/2``, every zero bit flips on with probability ``q = 1/(e^eps+1)``.
The server sums the reported bit-vectors and debiases

.. math::  \\hat f(d) = \\frac{C(d) - n q}{p - q}.

Its per-item variance beats k-RR for all but tiny domains, but each client
transmits ``|D|`` bits — the communication cost that motivates the
sketch-based approaches (Fig. 7's story).  Included to complete the
standard frequency-oracle family; the paper's Fig. 5 line-up uses k-RR /
FLH / Apple-HCMS.
"""

from __future__ import annotations

import math

import numpy as np

from ..rng import RandomState
from .base import FrequencyOracle

__all__ = ["OUEOracle"]


class OUEOracle(FrequencyOracle):
    """OUE frequency oracle over ``[0, domain_size)``."""

    name = "OUE"

    def __init__(self, domain_size: int, epsilon: float, seed: RandomState = None) -> None:
        super().__init__(domain_size, epsilon, seed)
        self.p = 0.5
        self.q = 1.0 / (math.exp(min(epsilon, 700)) + 1.0)
        self._bit_counts = np.zeros(self.domain_size, dtype=np.int64)

    def _collect(self, values: np.ndarray, rng: np.random.Generator) -> None:
        # Equivalent sampling without materialising n x |D| bit matrices:
        # each reported vector contributes Binomial(|D|-1, q) background
        # one-bits at uniform positions plus the true bit w.p. p.
        n = values.size
        keep = rng.random(n) < self.p
        kept = values[keep]
        self._bit_counts += np.bincount(kept, minlength=self.domain_size)

        # Background flips: total number across all reports is binomial;
        # positions are uniform among the domain minus the true position.
        flips_per_report = rng.binomial(self.domain_size - 1, self.q, size=n)
        total_flips = int(flips_per_report.sum())
        if total_flips:
            owners = np.repeat(np.arange(n), flips_per_report)
            offsets = rng.integers(0, self.domain_size - 1, size=total_flips)
            positions = np.where(offsets >= values[owners], offsets + 1, offsets)
            self._bit_counts += np.bincount(positions, minlength=self.domain_size)

    def _merge(self, other: "OUEOracle") -> None:
        self._bit_counts += other._bit_counts

    def _frequencies(self, candidates: np.ndarray) -> np.ndarray:
        observed = self._bit_counts[candidates].astype(np.float64)
        return (observed - self.num_reports * self.q) / (self.p - self.q)

    @property
    def report_bits(self) -> int:
        """The whole unary vector: one bit per domain value."""
        return self.domain_size

    def memory_bytes(self) -> int:
        """The per-position bit-count vector."""
        return int(self._bit_counts.nbytes)
