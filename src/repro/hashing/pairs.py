"""Per-row ``(h_j, xi_j)`` hash-pair families shared by clients and server.

A (fast-)AGMS-style sketch of shape ``(k, m)`` carries one bucket hash and
one sign hash per row.  Join-size estimation additionally requires that the
two attributes being joined use the *same* pairs — ``MA`` and ``MB`` in
Eq. (5) of the paper only estimate ``|A join B|`` when ``h_j`` and ``xi_j``
coincide.  :class:`HashPairs` packages the pairs, offers batched evaluation
for all rows at once, and implements value equality so that sketches can
verify compatibility before combining.
"""

from __future__ import annotations

import functools
from typing import List

import numpy as np

from ..errors import ParameterError
from ..rng import RandomState, ensure_rng, spawn_many
from ..validation import require_positive_int
from .kwise import KWiseHash, check_domain, polyval_all, polyval_rows, reduce_mod_m
from .sign import SignHash

__all__ = ["HashPairs", "stack_pair_coefficients"]


def _stack_coefficients(hashes) -> "np.ndarray | None":
    """Stack hash coefficients into a transposed ``(degree, k)`` matrix.

    The transpose keeps each degree's ``k`` coefficients contiguous, which
    is what :func:`repro.hashing.kwise.polyval_rows` gathers from.
    Returns ``None`` when the hashes have heterogeneous degrees (possible
    via hand-built :meth:`HashPairs.from_dict` payloads), in which case
    callers fall back to the per-row loop.
    """
    degrees = {h.independence for h in hashes}
    if len(degrees) != 1:
        return None
    return np.ascontiguousarray(np.stack([h.coefficients for h in hashes]).T)


def stack_pair_coefficients(pairs_list) -> "tuple[np.ndarray, np.ndarray] | None":
    """Concatenate several :class:`HashPairs`' coefficient matrices.

    Returns ``(bucket, sign)`` transposed matrices of shape
    ``(degree, T * k)`` in which pair ``t``'s row-``j`` polynomial sits at
    column ``t * k + j`` — the gather layout of
    :func:`repro.hashing.kwise.polyval_rows` for batches that mix reports
    of ``T`` different hash-pair draws (the trial-axis client kernel).
    Memoized on the pair tuple: one grid point's trial group builds its
    stacked matrices a single time and every chunk of every stream (and
    any repeated evaluation under the same pairs) reuses them.  Returns
    ``None`` when any pair lacks stacked coefficients (heterogeneous
    degrees) or the shapes disagree.
    """
    return _stack_pair_coefficients_cached(tuple(pairs_list))


@functools.lru_cache(maxsize=128)
def _stack_pair_coefficients_cached(pairs_tuple):
    if not pairs_tuple:
        return None
    k, m = pairs_tuple[0].k, pairs_tuple[0].m
    for p in pairs_tuple:
        if p.k != k or p.m != m:
            return None
        if p._bucket_coeffs is None or p._sign_coeffs is None:
            return None
    if len({p._bucket_coeffs.shape[0] for p in pairs_tuple}) != 1:
        return None
    if len({p._sign_coeffs.shape[0] for p in pairs_tuple}) != 1:
        return None
    bucket = np.ascontiguousarray(
        np.concatenate([p._bucket_coeffs for p in pairs_tuple], axis=1)
    )
    sign = np.ascontiguousarray(
        np.concatenate([p._sign_coeffs for p in pairs_tuple], axis=1)
    )
    return bucket, sign




class HashPairs:
    """The ``k`` hash pairs ``(h_j, xi_j)`` of a width-``m`` sketch.

    Parameters
    ----------
    k:
        Number of rows (independent estimators).
    m:
        Number of buckets per row; bucket hashes map into ``[0, m)``.
    seed:
        Master seed.  Equal ``(k, m, seed)`` does **not** guarantee equal
        pairs when a live generator is passed; to share pairs between two
        sketches, share the :class:`HashPairs` *object* (the intended
        pattern) or rebuild from :meth:`to_dict`.
    bucket_independence:
        Independence degree of the bucket hashes (pairwise by default).
    """

    __slots__ = ("k", "m", "bucket_hashes", "sign_hashes", "_bucket_coeffs", "_sign_coeffs")

    def __init__(
        self,
        k: int,
        m: int,
        seed: RandomState = None,
        *,
        bucket_independence: int = 2,
        bucket_hashes: List[KWiseHash] = None,
        sign_hashes: List[SignHash] = None,
    ) -> None:
        self.k = require_positive_int("k", k)
        self.m = require_positive_int("m", m)
        if bucket_hashes is not None or sign_hashes is not None:
            if bucket_hashes is None or sign_hashes is None:
                raise ParameterError("bucket_hashes and sign_hashes must be given together")
            if len(bucket_hashes) != self.k or len(sign_hashes) != self.k:
                raise ParameterError(
                    f"expected {self.k} bucket and sign hashes, got "
                    f"{len(bucket_hashes)} and {len(sign_hashes)}"
                )
            self.bucket_hashes = list(bucket_hashes)
            self.sign_hashes = list(sign_hashes)
        else:
            rng = ensure_rng(seed)
            children = spawn_many(rng, 2 * self.k)
            self.bucket_hashes = [
                KWiseHash(independence=bucket_independence, seed=children[j]) for j in range(self.k)
            ]
            self.sign_hashes = [SignHash(seed=children[self.k + j]) for j in range(self.k)]
        # Stacked (k, degree) coefficient matrices power the batched
        # evaluation paths below; ``None`` (mixed degrees) falls back to
        # the per-row loops.
        self._bucket_coeffs = _stack_coefficients(self.bucket_hashes)
        self._sign_coeffs = _stack_coefficients([s.base for s in self.sign_hashes])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def bucket(self, row: int, values: np.ndarray) -> np.ndarray:
        """``h_row(values)`` in ``[0, m)``."""
        self._check_row(row)
        return self.bucket_hashes[row].bucket(values, self.m)

    def sign(self, row: int, values: np.ndarray) -> np.ndarray:
        """``xi_row(values)`` in ``{-1, +1}``."""
        self._check_row(row)
        return self.sign_hashes[row](values)

    def bucket_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """``h_{rows[i]}(values[i])`` for per-report row assignments.

        This is the batched client path: report ``i`` goes to row
        ``rows[i]`` and needs only that row's hashes.  Each report's
        coefficients are gathered from the stacked matrix and every
        polynomial is evaluated in one vectorised Horner pass — no per-row
        masking over the batch.
        """
        rows, values = self._check_row_batch(rows, values)
        if self._bucket_coeffs is None:
            out = np.empty(values.shape, dtype=np.int64)
            for j in range(self.k):
                mask = rows == j
                if np.any(mask):
                    out[mask] = self.bucket_hashes[j].bucket(values[mask], self.m)
            return out
        check_domain(values)
        raw = polyval_rows(self._bucket_coeffs, rows, values.astype(np.uint64))
        return self._reduce_buckets(raw)

    def sign_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """``xi_{rows[i]}(values[i])`` for per-report row assignments."""
        if self._sign_coeffs is None:
            rows, values = self._check_row_batch(rows, values)
            out = np.empty(values.shape, dtype=np.int64)
            for j in range(self.k):
                mask = rows == j
                if np.any(mask):
                    out[mask] = self.sign_hashes[j](values[mask])
            return out
        return 1 - 2 * self.sign_parity_rows(rows, values)

    def sign_parity_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Sign *parity bits*: ``0`` where ``xi_{rows[i]}(values[i]) = +1``.

        The fused client path composes the three sign factors of a report
        (sign hash, Hadamard entry, flip channel) by XOR-ing parity bits
        instead of multiplying ``±1`` arrays — same values, fewer passes.
        """
        rows, values = self._check_row_batch(rows, values)
        if self._sign_coeffs is None:
            return (1 - self.sign_rows(rows, values)) // 2
        check_domain(values)
        raw = polyval_rows(self._sign_coeffs, rows, values.astype(np.uint64))
        return (raw & np.uint64(1)).astype(np.int64)

    def bucket_and_sign_parity_rows(
        self, rows: np.ndarray, values: np.ndarray, *, domain_checked: bool = False
    ):
        """``(bucket_rows(...), sign_parity_rows(...))`` in one pass.

        The fused client kernel needs both hashes of every report; doing
        them together shares the argument validation, the domain check and
        the uint64 conversion of ``values``.  ``domain_checked=True``
        skips the per-call range scan — for callers (the chunked fused
        kernel) that already validated the full batch up front.
        """
        rows, values = self._check_row_batch(rows, values)
        if self._bucket_coeffs is None or self._sign_coeffs is None:
            return self.bucket_rows(rows, values), self.sign_parity_rows(rows, values)
        if not domain_checked:
            check_domain(values)
        x = values.astype(np.uint64)
        buckets = self._reduce_buckets(polyval_rows(self._bucket_coeffs, rows, x))
        sign_raw = polyval_rows(self._sign_coeffs, rows, x)
        return buckets, (sign_raw & np.uint64(1)).astype(np.int64)

    def bucket_all(self, values: np.ndarray) -> np.ndarray:
        """Matrix ``H`` with ``H[j, i] = h_j(values[i])`` — shape ``(k, n)``.

        Used by the server for domain-wide frequency scans (Theorem 7) and
        by the non-private Fast-AGMS baseline, where every update touches
        every row.  All ``k`` polynomials are evaluated against the batch
        in one broadcast Horner pass.
        """
        values = np.asarray(values, dtype=np.int64)
        if self._bucket_coeffs is None:
            return np.stack(
                [self.bucket_hashes[j].bucket(values, self.m) for j in range(self.k)]
            )
        check_domain(values)
        raw = polyval_all(self._bucket_coeffs, values.astype(np.uint64))
        return self._reduce_buckets(raw)

    def sign_all(self, values: np.ndarray) -> np.ndarray:
        """Matrix ``S`` with ``S[j, i] = xi_j(values[i])`` — shape ``(k, n)``."""
        values = np.asarray(values, dtype=np.int64)
        if self._sign_coeffs is None:
            return np.stack([self.sign_hashes[j](values) for j in range(self.k)])
        check_domain(values)
        raw = polyval_all(self._sign_coeffs, values.astype(np.uint64))
        return 1 - 2 * (raw & np.uint64(1)).astype(np.int64)

    def _reduce_buckets(self, raw: np.ndarray) -> np.ndarray:
        return reduce_mod_m(raw, self.m)

    # ------------------------------------------------------------------
    # Compatibility / serialisation
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.k:
            raise ParameterError(f"row must lie in [0, {self.k}), got {row}")

    def _check_row_batch(self, rows: np.ndarray, values: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if rows.shape != values.shape:
            raise ParameterError("rows and values must have the same shape")
        return rows, values

    def to_dict(self) -> dict:
        """Serialise to a plain dict (inverse of :meth:`from_dict`)."""
        return {
            "k": self.k,
            "m": self.m,
            "bucket_hashes": [h.to_dict() for h in self.bucket_hashes],
            "sign_hashes": [s.to_dict() for s in self.sign_hashes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HashPairs":
        """Rebuild hash pairs serialised by :meth:`to_dict`."""
        return cls(
            payload["k"],
            payload["m"],
            bucket_hashes=[KWiseHash.from_dict(h) for h in payload["bucket_hashes"]],
            sign_hashes=[SignHash.from_dict(s) for s in payload["sign_hashes"]],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashPairs):
            return NotImplemented
        return (
            self.k == other.k
            and self.m == other.m
            and self.bucket_hashes == other.bucket_hashes
            and self.sign_hashes == other.sign_hashes
        )

    def __hash__(self) -> int:
        return hash((self.k, self.m, tuple(self.bucket_hashes), tuple(self.sign_hashes)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashPairs(k={self.k}, m={self.m})"
