"""Hash-function substrate: k-wise independent hashing, sign hashes, pairs.

The sketching literature (AGMS, Fast-AGMS, Count-Sketch, the paper's
LDPJoinSketch) needs two kinds of hash functions:

* *bucket* hashes ``h : D -> [m]`` (pairwise independence suffices for the
  variance bounds);
* *sign* hashes ``xi : D -> {-1, +1}`` drawn from a four-wise independent
  family (four-wise independence is what makes the inner-product variance
  bounds of Lemma 4 / Theorem 4 go through).

Both are built from polynomial hashing over the Mersenne prime ``2^31 - 1``
(:class:`KWiseHash`), and :class:`HashPairs` packages the ``k`` per-row
``(h_j, xi_j)`` pairs that a sketch and its clients must share.
"""

from .kwise import MERSENNE_PRIME_31, KWiseHash
from .sign import SignHash
from .pairs import HashPairs, stack_pair_coefficients

__all__ = [
    "MERSENNE_PRIME_31",
    "KWiseHash",
    "SignHash",
    "HashPairs",
    "stack_pair_coefficients",
]
