"""Four-wise independent ``{-1, +1}`` sign hashes.

The AGMS family of sketches multiplies each update by a random sign
``xi(d)``; the second-moment analysis (Lemma 2 / Lemma 4 of the paper)
requires the signs to be drawn from a *four-wise* independent family.  We
derive the sign from a :class:`repro.hashing.kwise.KWiseHash` with
``independence=4`` by taking the parity of the field element.

Because the field size ``p = 2^31 - 1`` is odd, parity of a uniform field
element is biased by ``1/(2p) < 3e-10`` — far below every statistical
tolerance in this library (and below the bias of the PRNG itself for any
feasible sample size).
"""

from __future__ import annotations

import numpy as np

from ..rng import RandomState
from .kwise import KWiseHash

__all__ = ["SignHash"]


class SignHash:
    """A sign hash ``xi : [0, 2^31-1) -> {-1, +1}``, four-wise independent.

    Thin wrapper around :class:`KWiseHash`; exists so call sites read as
    ``sign(d)`` and so the independence degree is fixed in one place.
    """

    __slots__ = ("_hash",)

    def __init__(self, seed: RandomState = None, *, base: KWiseHash = None) -> None:
        self._hash = base if base is not None else KWiseHash(independence=4, seed=seed)

    @property
    def base(self) -> KWiseHash:
        """The underlying field hash (exposed for batched evaluation)."""
        return self._hash

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Return ``+1`` / ``-1`` for each value (scalar in, scalar out)."""
        raw = self._hash(values)
        if isinstance(raw, (int, np.integer)):
            return int(1 - 2 * (raw & 1))
        return (1 - 2 * (raw & 1)).astype(np.int64)

    def to_dict(self) -> dict:
        """Serialise to a plain dict (inverse of :meth:`from_dict`)."""
        return {"base": self._hash.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "SignHash":
        """Rebuild a sign hash serialised by :meth:`to_dict`."""
        return cls(base=KWiseHash.from_dict(payload["base"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignHash):
            return NotImplemented
        return self._hash == other._hash

    def __hash__(self) -> int:
        return hash(("SignHash", self._hash))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SignHash({self._hash!r})"
