"""k-wise independent polynomial hashing over a Mersenne prime.

The classic construction (Wegman & Carter): draw coefficients
``c_0 .. c_{k-1}`` uniformly from the field ``GF(p)`` with ``c_{k-1} != 0``
and evaluate

.. math::  g(x) = \\Big( \\sum_{t<k} c_t x^t \\Big) \\bmod p .

For inputs restricted to ``[0, p)`` the family is exactly ``k``-wise
independent over ``[0, p)``.  We fix ``p = 2^31 - 1`` (a Mersenne prime):

* every join-attribute domain used in the paper (at most a few million
  distinct ids) fits comfortably below ``p``;
* two 31-bit residues multiply without overflow inside ``uint64``, so the
  Horner evaluation is exactly computable with vectorised NumPy — no
  arbitrary-precision arithmetic on the hot path.

:class:`KWiseHash` evaluates batches of values; range reduction to ``[m]``
or to signs is layered on top (see :mod:`repro.hashing.sign` and
:class:`repro.hashing.pairs.HashPairs`).

The batched entry points :func:`polyval_rows` / :func:`polyval_all`
dispatch to the active compute backend (:mod:`repro.backend`); the NumPy
reference kernels live here as :func:`polyval_rows_numpy` /
:func:`polyval_all_numpy` and remain the executable specification every
backend is pinned against.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..backend import get_backend
from ..errors import DomainError, ParameterError
from ..rng import RandomState, ensure_rng
from ..validation import require_positive_int

__all__ = [
    "MERSENNE_PRIME_31",
    "KWiseHash",
    "check_domain",
    "mod_mersenne31",
    "polyval_mersenne",
    "polyval_rows",
    "polyval_rows_numpy",
    "polyval_all",
    "polyval_all_numpy",
    "reduce_mod_m",
]

#: The field modulus: fifth Mersenne prime, 2**31 - 1.
MERSENNE_PRIME_31 = (1 << 31) - 1

_P64 = np.uint64(MERSENNE_PRIME_31)
_SHIFT = np.uint64(31)


def check_domain(values: np.ndarray) -> None:
    """Raise :class:`DomainError` unless every value lies in ``[0, p)``.

    The single range gate shared by every hash-evaluation entry point
    (scalar, per-report gather, all-rows, and the fused client kernel's
    whole-batch upfront check).
    """
    if values.size and (values.min() < 0 or values.max() >= MERSENNE_PRIME_31):
        raise DomainError("hash inputs must lie in [0, 2**31 - 1)")


def reduce_mod_m(raw: np.ndarray, m: int) -> np.ndarray:
    """Map field residues into ``[0, m)`` — a mask when ``m`` is ``2**b``.

    The single bucket-reduction shared by :class:`~repro.hashing.pairs.HashPairs`
    and the fused backend kernels, so the fused and non-fused encode paths
    cannot drift apart.
    """
    if m & (m - 1) == 0:
        return (raw & np.uint64(m - 1)).astype(np.int64)
    return (raw % np.uint64(m)).astype(np.int64)


def mod_mersenne31(x: np.ndarray) -> np.ndarray:
    """Reduce ``uint64`` values below ``2**62`` modulo ``2**31 - 1``.

    Uses the Mersenne shift-add identity ``x mod p = (x & p) + (x >> 31)
    (mod p)`` twice followed by one conditional subtraction — three cheap
    bitwise passes instead of a 64-bit integer division per element, which
    is what makes the Horner evaluation below the hot-loop winner.

    The first fold maps ``x < 2**62`` below ``2**32``; the second maps that
    below ``2**31 + 1``; the final comparison folds the two remaining
    aliases (``p`` and ``p + 1``) into canonical ``[0, p)``.
    """
    x = (x & _P64) + (x >> _SHIFT)
    x = (x & _P64) + (x >> _SHIFT)
    return np.where(x >= _P64, x - _P64, x)


def polyval_mersenne(coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Batched Horner evaluation of modular polynomials over ``GF(p)``.

    ``coefficients`` has shape ``(..., degree)`` (low degree first, every
    entry in ``[0, p)``); ``x`` must broadcast against ``coefficients[..., 0]``
    and lie in ``[0, p)``.  Evaluates one polynomial per leading position —
    the kernel behind both the per-report gather (one polynomial per
    report) and the all-rows matrix evaluation of
    :meth:`repro.hashing.pairs.HashPairs.bucket_all`.
    """
    coefficients = np.asarray(coefficients, dtype=np.uint64)
    x = np.asarray(x, dtype=np.uint64)
    acc = np.broadcast_arrays(coefficients[..., -1], x)[0].copy()
    for t in range(coefficients.shape[-1] - 2, -1, -1):
        # acc, x < 2**31 so acc * x + c < 2**62 + 2**31 fits in uint64.
        acc = mod_mersenne31(acc * x + coefficients[..., t])
    return acc


def _lazy_horner(acc: np.ndarray, x: np.ndarray, fetch, steps: int) -> np.ndarray:
    """Shared in-place Horner loop with *lazy* Mersenne folds.

    ``acc`` is an owned uint64 array in ``[0, p)``; ``fetch(t)`` yields the
    degree-``t`` coefficient broadcastable against ``acc`` (written into a
    scratch buffer by the caller).  Between Horner steps only a single
    shift-add fold runs — full canonicalisation would be wasted work — and
    a second fold every third step caps the drift.

    Why one fold suffices: with ``acc < B`` the step value is
    ``y = acc * x + c <= (B + 1) * (p - 1)`` and one fold maps it below
    ``2**31 + B + 2``, so the bound grows by ``~2**31`` per step from
    ``B_0 < 2**31``.  The uint64 product stays exact while ``B < ~2**33``,
    i.e. for three consecutive single-fold steps; the periodic double fold
    resets the bound before the fourth.  The loop therefore ends with
    ``acc < 2**33``, where one final fold lands in ``[0, p + 4]`` and a
    single conditional subtraction restores canonical ``[0, p)``.
    """
    hi = np.empty_like(acc)
    for i in range(steps):
        t = steps - 1 - i  # degree of the coefficient entering this step
        acc *= x
        acc += fetch(t)
        np.right_shift(acc, _SHIFT, out=hi)
        acc &= _P64
        acc += hi
        if i % 3 == 2 and i != steps - 1:
            np.right_shift(acc, _SHIFT, out=hi)
            acc &= _P64
            acc += hi
    np.right_shift(acc, _SHIFT, out=hi)
    acc &= _P64
    acc += hi
    np.subtract(acc, _P64, out=acc, where=acc >= _P64)
    return acc


def polyval_rows(coefficients_t: np.ndarray, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Per-element polynomial gather-and-evaluate: ``g_{rows[i]}(x[i])``.

    ``coefficients_t`` is the *transposed* ``(degree, k)`` coefficient
    matrix; ``rows`` selects the polynomial per element and must lie in
    ``[0, k)``; ``x`` holds the evaluation points in ``[0, p)`` as
    uint64.  This is the client hot path: one hash evaluation per report.
    Dispatches to the active compute backend;
    :func:`polyval_rows_numpy` is the reference kernel.
    """
    return get_backend().polyval_mersenne_rows(coefficients_t, rows, x)


def polyval_rows_numpy(
    coefficients_t: np.ndarray, rows: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """NumPy reference kernel behind :func:`polyval_rows`.

    One contiguous coefficient row per degree means each per-report
    gather is a flat ``np.take`` instead of a strided column read — the
    difference is ~2x on million-report batches.
    """
    degree = coefficients_t.shape[0]
    # mode="clip" keeps np.take on its unbuffered fast path (~2.5x the
    # default bounds-raising path); callers guarantee the row range.
    acc = coefficients_t[-1].take(rows, mode="clip")
    if degree == 1:
        return acc
    cbuf = np.empty_like(acc)

    def fetch(t: int) -> np.ndarray:
        np.take(coefficients_t[t], rows, out=cbuf, mode="clip")
        return cbuf

    return _lazy_horner(acc, x, fetch, degree - 1)


def polyval_all(coefficients_t: np.ndarray, x: np.ndarray) -> np.ndarray:
    """All-rows evaluation: matrix ``G[j, i] = g_j(x[i])`` — shape ``(k, n)``.

    ``coefficients_t`` is the transposed ``(degree, k)`` matrix; every
    polynomial is evaluated against the whole batch (the server-side
    scan path).  Dispatches to the active compute backend;
    :func:`polyval_all_numpy` is the reference kernel.
    """
    return get_backend().polyval_mersenne_all(coefficients_t, x)


def polyval_all_numpy(coefficients_t: np.ndarray, x: np.ndarray) -> np.ndarray:
    """NumPy reference kernel behind :func:`polyval_all`: one broadcast
    Horner pass over all rows at once."""
    degree, k = coefficients_t.shape
    x = x[None, :]
    acc = np.repeat(coefficients_t[-1][:, None], x.shape[1], axis=1)
    if degree == 1:
        return acc
    return _lazy_horner(acc, x, lambda t: coefficients_t[t][:, None], degree - 1)


class KWiseHash:
    """A single hash function drawn from a k-wise independent family.

    Parameters
    ----------
    independence:
        Degree of independence ``k`` (the polynomial has ``k``
        coefficients).  ``2`` gives pairwise, ``4`` four-wise independence.
    seed:
        Seed / generator used to draw the coefficients.  Two instances
        created from the same seed are identical functions.
    coefficients:
        Explicit coefficients (low degree first); mutually exclusive with
        ``seed``-based sampling and mainly used by tests and serialisation.
    """

    __slots__ = ("independence", "coefficients")

    def __init__(
        self,
        independence: int = 4,
        seed: RandomState = None,
        *,
        coefficients: Optional[Sequence[int]] = None,
    ) -> None:
        self.independence = require_positive_int("independence", independence)
        if coefficients is not None:
            coeffs = np.asarray(list(coefficients), dtype=np.uint64)
            if coeffs.shape != (self.independence,):
                raise ParameterError(
                    f"expected {self.independence} coefficients, got {coeffs.shape}"
                )
            if np.any(coeffs >= MERSENNE_PRIME_31):
                raise ParameterError("coefficients must lie in [0, 2**31 - 1)")
            if self.independence > 1 and coeffs[-1] == 0:
                raise ParameterError("leading coefficient must be non-zero")
            self.coefficients = coeffs
        else:
            rng = ensure_rng(seed)
            coeffs = rng.integers(0, MERSENNE_PRIME_31, size=self.independence, dtype=np.int64)
            if self.independence > 1 and coeffs[-1] == 0:
                coeffs[-1] = 1  # keep the polynomial at full degree
            self.coefficients = coeffs.astype(np.uint64)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial at ``values``; result lies in ``[0, p)``.

        ``values`` may be a scalar or an integer array; values must lie in
        ``[0, 2**31 - 1)``.
        """
        scalar = np.isscalar(values)
        x = np.asarray(values, dtype=np.int64)
        check_domain(x)
        out = polyval_mersenne(self.coefficients, x.astype(np.uint64)).astype(np.int64)
        if scalar:
            return int(out)
        return out

    def bucket(self, values: np.ndarray, m: int) -> np.ndarray:
        """Reduce hash outputs into ``[0, m)`` (bucket hash ``h``)."""
        m = require_positive_int("m", m)
        out = self(values)
        if np.isscalar(out) or isinstance(out, int):
            return int(out) % m
        return out % m

    # ------------------------------------------------------------------
    # Introspection / serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise to a plain dict (inverse of :meth:`from_dict`)."""
        return {
            "independence": self.independence,
            "coefficients": [int(c) for c in self.coefficients],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KWiseHash":
        """Rebuild a hash function serialised by :meth:`to_dict`."""
        return cls(payload["independence"], coefficients=payload["coefficients"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KWiseHash):
            return NotImplemented
        return self.independence == other.independence and bool(
            np.array_equal(self.coefficients, other.coefficients)
        )

    def __hash__(self) -> int:
        return hash((self.independence, tuple(int(c) for c in self.coefficients)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KWiseHash(independence={self.independence}, coefficients={self.coefficients.tolist()})"
