"""k-wise independent polynomial hashing over a Mersenne prime.

The classic construction (Wegman & Carter): draw coefficients
``c_0 .. c_{k-1}`` uniformly from the field ``GF(p)`` with ``c_{k-1} != 0``
and evaluate

.. math::  g(x) = \\Big( \\sum_{t<k} c_t x^t \\Big) \\bmod p .

For inputs restricted to ``[0, p)`` the family is exactly ``k``-wise
independent over ``[0, p)``.  We fix ``p = 2^31 - 1`` (a Mersenne prime):

* every join-attribute domain used in the paper (at most a few million
  distinct ids) fits comfortably below ``p``;
* two 31-bit residues multiply without overflow inside ``uint64``, so the
  Horner evaluation is exactly computable with vectorised NumPy — no
  arbitrary-precision arithmetic on the hot path.

:class:`KWiseHash` evaluates batches of values; range reduction to ``[m]``
or to signs is layered on top (see :mod:`repro.hashing.sign` and
:class:`repro.hashing.pairs.HashPairs`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import DomainError, ParameterError
from ..rng import RandomState, ensure_rng
from ..validation import require_positive_int

__all__ = ["MERSENNE_PRIME_31", "KWiseHash"]

#: The field modulus: fifth Mersenne prime, 2**31 - 1.
MERSENNE_PRIME_31 = (1 << 31) - 1


class KWiseHash:
    """A single hash function drawn from a k-wise independent family.

    Parameters
    ----------
    independence:
        Degree of independence ``k`` (the polynomial has ``k``
        coefficients).  ``2`` gives pairwise, ``4`` four-wise independence.
    seed:
        Seed / generator used to draw the coefficients.  Two instances
        created from the same seed are identical functions.
    coefficients:
        Explicit coefficients (low degree first); mutually exclusive with
        ``seed``-based sampling and mainly used by tests and serialisation.
    """

    __slots__ = ("independence", "coefficients")

    def __init__(
        self,
        independence: int = 4,
        seed: RandomState = None,
        *,
        coefficients: Optional[Sequence[int]] = None,
    ) -> None:
        self.independence = require_positive_int("independence", independence)
        if coefficients is not None:
            coeffs = np.asarray(list(coefficients), dtype=np.uint64)
            if coeffs.shape != (self.independence,):
                raise ParameterError(
                    f"expected {self.independence} coefficients, got {coeffs.shape}"
                )
            if np.any(coeffs >= MERSENNE_PRIME_31):
                raise ParameterError("coefficients must lie in [0, 2**31 - 1)")
            if self.independence > 1 and coeffs[-1] == 0:
                raise ParameterError("leading coefficient must be non-zero")
            self.coefficients = coeffs
        else:
            rng = ensure_rng(seed)
            coeffs = rng.integers(0, MERSENNE_PRIME_31, size=self.independence, dtype=np.int64)
            if self.independence > 1 and coeffs[-1] == 0:
                coeffs[-1] = 1  # keep the polynomial at full degree
            self.coefficients = coeffs.astype(np.uint64)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial at ``values``; result lies in ``[0, p)``.

        ``values`` may be a scalar or an integer array; values must lie in
        ``[0, 2**31 - 1)``.
        """
        scalar = np.isscalar(values)
        x = np.asarray(values, dtype=np.int64)
        if x.size and (x.min() < 0 or x.max() >= MERSENNE_PRIME_31):
            raise DomainError("hash inputs must lie in [0, 2**31 - 1)")
        x = x.astype(np.uint64)
        p = np.uint64(MERSENNE_PRIME_31)
        acc = np.full(x.shape, self.coefficients[-1], dtype=np.uint64)
        for c in self.coefficients[-2::-1]:
            # acc, x < 2**31 so acc * x < 2**62 fits in uint64 exactly.
            acc = (acc * x + c) % p
        out = acc.astype(np.int64)
        if scalar:
            return int(out)
        return out

    def bucket(self, values: np.ndarray, m: int) -> np.ndarray:
        """Reduce hash outputs into ``[0, m)`` (bucket hash ``h``)."""
        m = require_positive_int("m", m)
        out = self(values)
        if np.isscalar(out) or isinstance(out, int):
            return int(out) % m
        return out % m

    # ------------------------------------------------------------------
    # Introspection / serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise to a plain dict (inverse of :meth:`from_dict`)."""
        return {
            "independence": self.independence,
            "coefficients": [int(c) for c in self.coefficients],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KWiseHash":
        """Rebuild a hash function serialised by :meth:`to_dict`."""
        return cls(payload["independence"], coefficients=payload["coefficients"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KWiseHash):
            return NotImplemented
        return self.independence == other.independence and bool(
            np.array_equal(self.coefficients, other.coefficients)
        )

    def __hash__(self) -> int:
        return hash((self.independence, tuple(int(c) for c in self.coefficients)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KWiseHash(independence={self.independence}, coefficients={self.coefficients.tolist()})"
