"""Compact JSON-safe ndarray serialisation.

Sketch payloads used to ship their counter arrays as nested Python lists
(``counts.tolist()``), which costs ~20 bytes of JSON per float and an
O(elements) Python-object round-trip on both ends.  The codec here instead
embeds the raw C-order array bytes as base64 with an explicit dtype/shape
header — about 11 bytes per float64 after base64 expansion, zero per-element
Python work, and still plain JSON.

:func:`decode_array` keeps a backward-compatible read path: payloads
written by older versions (bare nested lists) decode transparently, so
persisted sketches and sessions remain loadable.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, Union

import numpy as np

from .errors import ParameterError

__all__ = ["encode_array", "decode_array"]

#: Marker distinguishing packed payloads from legacy nested lists.
_FORMAT = "ndarray/base64"


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Pack an ndarray into a JSON-compatible dict.

    The payload records the dtype string, the shape, and the raw C-order
    bytes base64-encoded.  Integer arrays are narrowed losslessly to the
    smallest width holding their value range before packing (sketch
    accumulators hold small signed counts, so this typically shrinks the
    wire bytes 4-8x); :func:`decode_array` widens them back.  Only
    native-byte-order numeric dtypes are supported (everything this
    library serialises).
    """
    array = np.ascontiguousarray(array)
    if np.issubdtype(array.dtype, np.signedinteger) and array.size:
        low, high = int(array.min()), int(array.max())
        for narrow in (np.int8, np.int16, np.int32):
            info = np.iinfo(narrow)
            if info.min <= low and high <= info.max:
                array = array.astype(narrow)
                break
    if array.dtype.byteorder not in ("=", "|", "<"):
        array = array.astype(array.dtype.newbyteorder("<"))
    return {
        "format": _FORMAT,
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: Union[Dict[str, Any], list], dtype: np.dtype) -> np.ndarray:
    """Unpack :func:`encode_array` output *or* a legacy nested list.

    ``dtype`` is the accumulator dtype the caller expects; packed payloads
    are cast to it after decoding (a no-op when the dtypes already match),
    legacy lists are parsed straight into it.
    """
    if isinstance(payload, dict):
        if payload.get("format") != _FORMAT:
            raise ParameterError(
                f"unknown array payload format {payload.get('format')!r}"
            )
        raw = base64.b64decode(payload["data"])
        stored = np.dtype(payload["dtype"])
        shape = tuple(int(s) for s in payload["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if len(raw) != count * stored.itemsize:
            raise ParameterError(
                f"array payload holds {len(raw)} bytes, expected "
                f"{count * stored.itemsize} for shape {shape} dtype {stored}"
            )
        array = np.frombuffer(raw, dtype=stored).reshape(shape)
        # np.frombuffer views are read-only; always hand back a writable copy.
        return np.array(array, dtype=dtype)
    return np.asarray(payload, dtype=dtype)
