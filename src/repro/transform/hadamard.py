"""Walsh--Hadamard transform utilities.

The LDP protocols in this library (Algorithm 1 of the paper, the Apple-HCMS
baseline, and the multiway extension of Section VI) all rely on the
*naturally ordered* (Sylvester) Hadamard matrix ``H_m`` of a power-of-two
order ``m``:

.. math::

    H_1 = [1], \\qquad
    H_m = \\begin{pmatrix} H_{m/2} & H_{m/2} \\\\ H_{m/2} & -H_{m/2}
    \\end{pmatrix}

Three facts make the protocols cheap:

* individual entries have the closed form
  ``H_m[i, j] = (-1)^{popcount(i & j)}`` — a client never materialises the
  matrix, it evaluates one entry in O(1);
* ``H_m`` is symmetric and ``H_m @ H_m = m * I`` (so the inverse transform is
  the forward transform divided by ``m``);
* the matrix-vector product costs ``O(m log m)`` via the in-place butterfly
  (the fast Walsh--Hadamard transform, FWHT), which the server uses to undo
  the client-side transform row by row.

The FWHT accepts either a single vector or a batch of row vectors;
:func:`fwht_inplace` dispatches to the active compute backend
(:mod:`repro.backend`), with :func:`fwht_batch_inplace_numpy` as the
scratch-buffered reference butterfly.
"""

from __future__ import annotations

import threading
from typing import Union

import numpy as np

from ..validation import require_power_of_two

__all__ = [
    "hadamard_entry",
    "hadamard_row",
    "hadamard_matrix",
    "fwht",
    "fwht_inplace",
    "fwht_batch_inplace_numpy",
    "sample_hadamard_entries",
    "sample_hadamard_parities",
]


def _build_parity_lut() -> np.ndarray:
    """Popcount-parity of every 16-bit word, built once at import."""
    v = np.arange(1 << 16, dtype=np.uint32)
    v ^= v >> 8
    v ^= v >> 4
    v ^= v >> 2
    v ^= v >> 1
    return (v & 1).astype(np.uint8)


#: 64 KiB popcount-parity lookup table (L2-resident) — one gather per
#: element replaces the last four XOR-fold passes of the word-parity
#: reduction.
_PARITY16 = _build_parity_lut()
_MASK16 = np.uint64(0xFFFF)


def _popcount_parity(x: np.ndarray, bits: int = 64, *, consume: bool = False) -> np.ndarray:
    """Return the parity (0 or 1) of the popcount of each element of ``x``.

    Folds each word down to 16 bits with the XOR identity
    ``parity(x) = parity(x ^ (x >> s))``, skipping folds above the stated
    bit width, then reads the answer from the precomputed 16-bit lookup
    table — sketch indices are ``log2(m)``-bit values, so the typical
    call is a single table gather with no fold passes at all.  ``x`` must
    be a non-negative integer array with values below ``2**bits`` (and
    below 2**63).  With ``consume=True`` the caller donates ``x`` as
    scratch (hot paths pass a freshly allocated array to fold fully in
    place); otherwise any applied fold allocates so the caller's buffer
    survives.
    """
    x = np.asarray(x)
    if x.dtype == np.int64:
        x = x.view(np.uint64)  # zero-copy; values are non-negative
        owned = consume
    elif x.dtype == np.uint64:
        owned = consume
    else:
        x = x.astype(np.uint64)
        owned = True
    for shift in (32, 16):
        if shift < bits:
            if owned:
                x ^= x >> np.uint64(shift)
            else:
                x = x ^ (x >> np.uint64(shift))
                owned = True
    return _PARITY16[np.bitwise_and(x, _MASK16)].astype(np.int64)


def hadamard_entry(i: Union[int, np.ndarray], j: Union[int, np.ndarray], order: int) -> Union[int, np.ndarray]:
    """Entry ``H_order[i, j]`` of the Sylvester Hadamard matrix.

    Supports broadcasting: ``i`` and ``j`` may be scalars or equally shaped
    arrays; the result is ``+1`` or ``-1`` (int64).

    >>> hadamard_entry(1, 1, 2)
    -1
    >>> hadamard_entry(0, 3, 4)
    1
    """
    order = require_power_of_two("order", order)
    i_arr = np.asarray(i, dtype=np.int64)
    j_arr = np.asarray(j, dtype=np.int64)
    if np.any(i_arr < 0) or np.any(i_arr >= order) or np.any(j_arr < 0) or np.any(j_arr >= order):
        raise IndexError(f"Hadamard indices must lie in [0, {order})")
    parity = _popcount_parity(np.bitwise_and(i_arr, j_arr))
    signs = 1 - 2 * parity
    if np.isscalar(i) and np.isscalar(j):
        return int(signs)
    return signs


def hadamard_row(i: int, order: int) -> np.ndarray:
    """Return row ``i`` of ``H_order`` as an int64 ``(-1/+1)`` vector."""
    order = require_power_of_two("order", order)
    cols = np.arange(order, dtype=np.int64)
    return np.asarray(hadamard_entry(int(i), cols, order), dtype=np.int64)


def hadamard_matrix(order: int) -> np.ndarray:
    """Materialise the full ``order x order`` Hadamard matrix (tests only).

    The matrix costs ``order**2`` memory; production code paths use
    :func:`hadamard_entry` / :func:`fwht` instead.
    """
    order = require_power_of_two("order", order)
    idx = np.arange(order, dtype=np.int64)
    return np.asarray(hadamard_entry(idx[:, None], idx[None, :], order), dtype=np.int64)


def fwht_inplace(data: np.ndarray) -> np.ndarray:
    """In-place fast Walsh--Hadamard transform along the last axis.

    ``data`` must be a float array whose last dimension is a power of two.
    Computes ``data @ H_m`` (equivalently ``H_m @ data`` per row, since the
    matrix is symmetric) without materialising ``H_m``.  Returns ``data``.
    Validation lives here; the butterfly itself runs on the active
    compute backend (:func:`fwht_batch_inplace_numpy` is the reference).
    """
    if data.ndim == 0:
        raise ValueError("fwht requires at least a 1-D array")
    if not np.issubdtype(data.dtype, np.floating):
        # An integer input would silently accumulate in integer arithmetic
        # (and a non-writable cast would corrupt the caller's buffer);
        # demand an explicit conversion instead.
        raise TypeError(
            f"fwht_inplace requires a float array, got dtype {data.dtype}; "
            f"convert with .astype(float) first (or use fwht for a copy)"
        )
    m = data.shape[-1]
    require_power_of_two("transform length", m)
    if m == 1:
        return data
    from ..backend import get_backend

    return get_backend().fwht_batch_inplace(data)


#: Per-thread scratch reused across :func:`fwht_batch_inplace_numpy`
#: calls — the half-size difference buffer is the transform's only
#: transient, and back-to-back sketch finalisations all need the same
#: ``k * m / 2`` floats.  Buffers above the cap are not retained so one
#: giant transform cannot pin memory for the rest of the process.
_SCRATCH = threading.local()
_SCRATCH_CACHE_MAX = 1 << 20  # elements (8 MiB of float64)


def _fwht_scratch(size: int, dtype: np.dtype) -> np.ndarray:
    buf = getattr(_SCRATCH, "buf", None)
    if buf is None or buf.dtype != dtype or buf.size < size:
        buf = np.empty(size, dtype=dtype)
        if size <= _SCRATCH_CACHE_MAX:
            _SCRATCH.buf = buf
    return buf[:size]


def fwht_batch_inplace_numpy(data: np.ndarray) -> np.ndarray:
    """NumPy reference butterfly behind :func:`fwht_inplace`.

    A single half-size scratch buffer — reused across calls via a
    per-thread cache — carries each level's differences: no per-level
    ``.copy()`` and, on the steady-state hot path, no per-call
    allocation at all.  Transient footprint is exactly ``data.size / 2``
    elements regardless of ``log2(m)`` levels.
    """
    m = data.shape[-1]
    scratch = _fwht_scratch(data.size // 2, data.dtype)
    h = 1
    while h < m:
        # Butterfly over blocks of width 2*h: (a, b) <- (a + b, a - b).
        view = data.reshape(*data.shape[:-1], m // (2 * h), 2, h)
        a = view[..., 0, :]
        b = view[..., 1, :]
        diff = scratch.reshape(a.shape)
        np.subtract(a, b, out=diff)
        np.add(a, b, out=a)
        b[...] = diff
        h *= 2
    return data


def fwht(data: np.ndarray) -> np.ndarray:
    """Return the Walsh--Hadamard transform of ``data`` (non-destructive).

    Works on a single vector or on a batch of rows; output dtype is float64.

    >>> fwht(np.array([1.0, 0.0]))
    array([1., 1.])
    """
    out = np.array(data, dtype=np.float64, copy=True)
    return fwht_inplace(out)


def sample_hadamard_entries(rows: np.ndarray, cols: np.ndarray, order: int) -> np.ndarray:
    """Vectorised ``H_order[rows[i], cols[i]]`` for report batches.

    This is the hot path of the batched client simulators: each client
    contributes one sampled Hadamard entry, so for ``n`` clients we evaluate
    ``n`` independent entries in one call.
    """
    return 1 - 2 * sample_hadamard_parities(rows, cols, order)


def sample_hadamard_parities(rows: np.ndarray, cols: np.ndarray, order: int) -> np.ndarray:
    """Parity bits of sampled Hadamard entries: ``0`` where the entry is +1.

    ``H_order[i, j] = (-1)^popcount(i & j)``, so the parity *is* the
    entry's sign bit.  The fused client path XORs this against the sign
    hash and flip-channel parities instead of multiplying three ``±1``
    arrays; the fold width is capped at ``log2(order)`` bits since
    ``i & j < order``.
    """
    order = require_power_of_two("order", order)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError(f"rows and cols must have the same shape, got {rows.shape} vs {cols.shape}")
    if rows.size and (
        rows.min() < 0 or rows.max() >= order or cols.min() < 0 or cols.max() >= order
    ):
        raise IndexError(f"Hadamard indices must lie in [0, {order})")
    # The AND result is freshly allocated, so donate it as fold scratch.
    return _popcount_parity(
        np.bitwise_and(rows, cols), bits=max(1, order.bit_length() - 1), consume=True
    )
