"""Hadamard-transform substrate used by the LDP sketch protocols."""

from .hadamard import (
    fwht,
    fwht_inplace,
    hadamard_entry,
    hadamard_matrix,
    hadamard_row,
    sample_hadamard_entries,
    sample_hadamard_parities,
)

__all__ = [
    "fwht",
    "fwht_inplace",
    "hadamard_entry",
    "hadamard_matrix",
    "hadamard_row",
    "sample_hadamard_entries",
    "sample_hadamard_parities",
]
