"""Exact LDP auditing by output-distribution enumeration.

For small parameterisations, every mechanism in this library has a finite
output space whose probabilities can be computed *exactly*.  The auditor
takes a function ``distribution(x) -> {output: probability}`` and verifies
the epsilon-LDP dominance condition of Definition 1,

.. math::  \\Pr[R(x) = y] \\le e^{\\epsilon}\\, \\Pr[R(x') = y]
           \\quad \\forall x, x', y,

by enumerating all input pairs and outputs.  The test-suite runs this
against the analytic distributions of Algorithm 1 (LDPJoinSketch client),
Algorithm 4 (FAP, both modes, target and non-target inputs mixed), k-RR,
and the local-hashing GRR step — turning Theorems 1 and 6 into executable
checks rather than trusted claims.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Sequence, Tuple

import math

from ..errors import ParameterError

__all__ = ["max_privacy_ratio", "verify_ldp"]

#: A mechanism's exact output distribution for one input.
DistributionFn = Callable[[Hashable], Dict[Hashable, float]]

_PROB_TOL = 1e-9


def _checked_distribution(dist_fn: DistributionFn, x: Hashable) -> Dict[Hashable, float]:
    dist = dist_fn(x)
    if not dist:
        raise ParameterError(f"distribution for input {x!r} is empty")
    total = sum(dist.values())
    if abs(total - 1.0) > 1e-6:
        raise ParameterError(
            f"distribution for input {x!r} sums to {total!r}, expected 1"
        )
    if any(p < -_PROB_TOL for p in dist.values()):
        raise ParameterError(f"distribution for input {x!r} has negative mass")
    return dist


def max_privacy_ratio(
    dist_fn: DistributionFn,
    inputs: Sequence[Hashable],
) -> float:
    """The worst output-probability ratio over all input pairs.

    Returns ``max_{x, x', y} Pr[R(x)=y] / Pr[R(x')=y]`` (``inf`` if some
    output is reachable from one input but impossible from another — such a
    mechanism satisfies no finite epsilon).
    """
    if len(inputs) < 2:
        raise ParameterError("need at least two inputs to audit privacy")
    distributions = {x: _checked_distribution(dist_fn, x) for x in inputs}
    outputs = set()
    for dist in distributions.values():
        outputs.update(dist.keys())

    worst = 1.0
    for y in outputs:
        probs = [distributions[x].get(y, 0.0) for x in inputs]
        hi = max(probs)
        lo = min(probs)
        if hi <= _PROB_TOL:
            continue
        if lo <= _PROB_TOL:
            return math.inf
        worst = max(worst, hi / lo)
    return worst


def verify_ldp(
    dist_fn: DistributionFn,
    inputs: Sequence[Hashable],
    epsilon: float,
    *,
    rtol: float = 1e-9,
) -> Tuple[bool, float]:
    """Check the epsilon-LDP bound; returns ``(holds, max_ratio)``."""
    ratio = max_privacy_ratio(dist_fn, inputs)
    bound = math.exp(epsilon) * (1.0 + rtol)
    return ratio <= bound, ratio
