"""Privacy substrate: randomized-response primitives, budgets, LDP audits."""

from .response import (
    c_epsilon,
    flip_probability,
    grr_probabilities,
    grr_perturb,
    keep_probability,
    random_signs,
)
from .budget import BudgetLedger, ContinualLedger, PrivacySpec
from .audit import max_privacy_ratio, verify_ldp

__all__ = [
    "c_epsilon",
    "flip_probability",
    "keep_probability",
    "random_signs",
    "grr_probabilities",
    "grr_perturb",
    "PrivacySpec",
    "BudgetLedger",
    "ContinualLedger",
    "max_privacy_ratio",
    "verify_ldp",
]
