"""Randomized-response primitives shared by every LDP mechanism.

Two perturbation channels cover the whole library:

* the **binary sign channel** used by LDPJoinSketch / FAP / Apple-HCMS: a
  ``{-1, +1}`` payload is multiplied by an independent random sign ``b``
  with ``Pr[b = -1] = 1 / (e^eps + 1)``.  Its debiasing constant is
  ``c_eps = (e^eps + 1) / (e^eps - 1)`` (``E[b] = 1 / c_eps``);
* **generalised randomized response** (GRR / k-RR) over a finite domain of
  size ``g``: the true value is kept with probability
  ``p = e^eps / (e^eps + g - 1)`` and replaced by a uniformly random *other*
  value with probability ``q = 1 / (e^eps + g - 1)`` each.

Both are exposed as vectorised, generator-driven functions so the client
simulators can perturb millions of reports per call.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ParameterError
from ..rng import RandomState, ensure_rng
from ..validation import require_positive_float, require_positive_int

__all__ = [
    "flip_probability",
    "keep_probability",
    "c_epsilon",
    "random_signs",
    "grr_probabilities",
    "grr_perturb",
]

#: ``math.exp`` overflows just above 709; beyond this the channel is
#: numerically noise-free anyway, so we clamp instead of overflowing.
_MAX_EXP = 700.0


def _exp_epsilon(epsilon: float) -> float:
    return math.exp(min(epsilon, _MAX_EXP))


def flip_probability(epsilon: float) -> float:
    """``Pr[b = -1] = 1 / (e^eps + 1)`` of the binary sign channel."""
    epsilon = require_positive_float("epsilon", epsilon)
    return 1.0 / (_exp_epsilon(epsilon) + 1.0)


def keep_probability(epsilon: float) -> float:
    """``Pr[b = +1] = e^eps / (e^eps + 1)`` of the binary sign channel."""
    return 1.0 - flip_probability(epsilon)


def c_epsilon(epsilon: float) -> float:
    """Debiasing constant ``c_eps = (e^eps + 1) / (e^eps - 1)``.

    ``E[b] = (e^eps - 1) / (e^eps + 1) = 1 / c_eps``, so multiplying an
    aggregated report by ``c_eps`` removes the perturbation bias
    (Algorithm 2 of the paper).
    """
    epsilon = require_positive_float("epsilon", epsilon)
    e_eps = _exp_epsilon(epsilon)
    return (e_eps + 1.0) / (e_eps - 1.0)


def random_signs(size: int, epsilon: float, rng: RandomState = None) -> np.ndarray:
    """Draw ``size`` independent signs with ``Pr[-1] = 1/(e^eps + 1)``."""
    if size < 0:
        raise ParameterError(f"size must be >= 0, got {size}")
    prob_flip = flip_probability(epsilon)
    generator = ensure_rng(rng)
    flips = generator.random(size) < prob_flip
    return np.where(flips, -1, 1).astype(np.int64)


def grr_probabilities(epsilon: float, domain_size: int) -> Tuple[float, float]:
    """GRR keep/replace probabilities ``(p, q)`` for a size-``g`` domain.

    ``p = e^eps / (e^eps + g - 1)`` is the probability of reporting the
    true value, ``q = 1 / (e^eps + g - 1)`` that of reporting any one
    specific other value; ``p + (g - 1) q = 1`` and ``p / q = e^eps``.
    """
    epsilon = require_positive_float("epsilon", epsilon)
    domain_size = require_positive_int("domain_size", domain_size, minimum=2)
    e_eps = _exp_epsilon(epsilon)
    denom = e_eps + domain_size - 1.0
    return e_eps / denom, 1.0 / denom


def grr_perturb(
    values: np.ndarray,
    domain_size: int,
    epsilon: float,
    rng: RandomState = None,
) -> np.ndarray:
    """Perturb ``values`` with generalised randomized response.

    Vectorised: each value is kept with probability ``p``; otherwise it is
    replaced by a uniform draw from the *other* ``g - 1`` values (the
    classic shift trick keeps the replacement exactly uniform over the
    complement without rejection sampling).
    """
    domain_size = require_positive_int("domain_size", domain_size, minimum=2)
    arr = np.asarray(values, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= domain_size):
        raise ParameterError(f"values must lie in [0, {domain_size})")
    p, _ = grr_probabilities(epsilon, domain_size)
    generator = ensure_rng(rng)
    keep = generator.random(arr.shape) < p
    # Uniform over the g-1 "other" values: draw r in [0, g-1) and shift past
    # the true value.
    offsets = generator.integers(0, domain_size - 1, size=arr.shape)
    replacements = np.where(offsets >= arr, offsets + 1, offsets)
    return np.where(keep, arr, replacements).astype(np.int64)
