"""Privacy-budget bookkeeping.

LDP budget accounting is simple but worth making explicit, because the
paper's two-phase protocol leans on both classic composition results:

* **sequential composition** — running mechanisms ``R1 (eps1)`` and
  ``R2 (eps2)`` on the *same* user costs ``eps1 + eps2``;
* **parallel composition** — running mechanisms on *disjoint* user groups
  costs only the maximum of their budgets.  LDPJoinSketch+ exploits this:
  phase-1 sample users, phase-2 group-1 users, and phase-2 group-2 users
  are disjoint, so each group enjoys the full ``eps`` (Section V-A).

:class:`BudgetLedger` records the charges a protocol makes per user group
and exposes the worst-case per-user spend, which tests assert equals the
configured ``eps`` for every protocol in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ParameterError
from ..validation import require_positive_float

__all__ = ["PrivacySpec", "BudgetLedger", "ContinualLedger"]


@dataclass(frozen=True)
class PrivacySpec:
    """Declared privacy target of a protocol run."""

    epsilon: float

    def __post_init__(self) -> None:
        require_positive_float("epsilon", self.epsilon)

    @property
    def e_epsilon(self) -> float:
        """``e^eps`` — the dominance ratio every output pair must satisfy."""
        import math

        return math.exp(self.epsilon)


@dataclass
class BudgetLedger:
    """Per-user-group ledger of privacy charges.

    Each charge records that every member of ``group`` was subjected to one
    ``eps``-LDP mechanism invocation.  Sequential composition applies within
    a group; parallel composition across groups.
    """

    charges: List[Tuple[str, float, str]] = field(default_factory=list)

    def charge(self, group: str, epsilon: float, mechanism: str) -> None:
        """Record one ``eps``-LDP invocation against every user in ``group``."""
        if not group:
            raise ParameterError("group must be a non-empty label")
        epsilon = require_positive_float("epsilon", epsilon)
        self.charges.append((group, epsilon, mechanism))

    def absorb(
        self,
        charges: Iterable[Sequence],
        *,
        label: str,
    ) -> None:
        """Fold another shard's charges in under *parallel* composition.

        Shard charges describe disjoint user cohorts, so a group name
        colliding with one already in this ledger must be *renamed*, not
        summed into the existing group — otherwise disjoint-cohort
        charges would compose sequentially and the worst-case spend
        would double.  The rename probes ``group@{label}1``,
        ``group@{label}2``, ... until unique, so absorbing shard after
        shard (each carrying the same bare stream groups, as happens
        when every shard was rebuilt from ``from_dict`` in its own
        process) never lands two charges in one group.

        Every merge path — session-vs-session, session-vs-partial —
        must route through this helper so the rename rule cannot drift
        between them again.
        """
        if not label:
            raise ParameterError("label must be a non-empty string")
        existing = {group for group, _, _ in self.charges}
        # Snapshot: ``charges`` may alias the very list we append to.
        for group, epsilon, mechanism in list(charges):
            candidate = str(group)
            suffix = 0
            while candidate in existing:
                suffix += 1
                candidate = f"{group}@{label}{suffix}"
            existing.add(candidate)
            self.charges.append((candidate, float(epsilon), str(mechanism)))

    def restore(self, charges: Iterable[Sequence]) -> None:
        """Append serialised charges verbatim (deserialisation only).

        Unlike :meth:`absorb` this performs no collision renaming: the
        payload *is* a ledger that already went through the charge /
        absorb rules, and duplicate groups in it legitimately encode
        sequential composition.  Only use when rebuilding a ledger from
        its own serialised form.
        """
        for group, epsilon, mechanism in list(charges):
            self.charges.append((str(group), float(epsilon), str(mechanism)))

    def spend_by_group(self) -> Dict[str, float]:
        """Total (sequentially composed) spend per user group."""
        spend: Dict[str, float] = {}
        for group, epsilon, _ in self.charges:
            spend[group] = spend.get(group, 0.0) + epsilon
        return spend

    def worst_case_epsilon(self) -> float:
        """Per-user privacy loss: max over groups (parallel composition)."""
        spend = self.spend_by_group()
        return max(spend.values()) if spend else 0.0

    def assert_within(self, spec: PrivacySpec) -> None:
        """Raise if any user group exceeded the declared budget."""
        worst = self.worst_case_epsilon()
        if worst > spec.epsilon + 1e-12:
            raise ParameterError(
                f"budget exceeded: worst-case spend {worst} > declared {spec.epsilon}"
            )


@dataclass
class ContinualLedger:
    """Continual-observation budget accounting across epochs and releases.

    Temporal estimation re-releases each epoch's data in every window
    that covers it, so the plain per-run :class:`BudgetLedger` no longer
    tells the whole story.  This ledger keys every charge by
    ``(subject, epoch, group)`` — subject is the accounting principal (a
    service tenant), epoch the time bucket, group the cohort within the
    epoch — and exposes the two readings that matter:

    * :meth:`worst_case_epsilon` — max over ``(epoch, group)`` spends:
      the per-user loss when cohorts are disjoint *across* epochs too
      (each user reports in one epoch only).
    * :meth:`lifetime_epsilon` — sum over epochs of the per-epoch worst
      case: the continual-observation bound for a user who returns
      every epoch (``W`` epochs of participation cost up to ``W * eps``).

    Window *queries* are post-processing of already-perturbed reports,
    so they never add spend — but they are recorded per epoch via
    :meth:`note_release` so operators can see re-release pressure.
    """

    #: (subject, epoch, group, epsilon, mechanism) charge rows.
    charges: List[Tuple[str, int, str, float, str]] = field(default_factory=list)
    #: (subject, epoch) -> number of window releases that covered it.
    releases: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def charge(
        self,
        subject: str,
        epoch: int,
        group: str,
        epsilon: float,
        mechanism: str,
    ) -> None:
        """Record one ``eps``-LDP invocation against ``group`` in ``epoch``."""
        if not subject:
            raise ParameterError("subject must be a non-empty label")
        if not group:
            raise ParameterError("group must be a non-empty label")
        if int(epoch) < 0:
            raise ParameterError(f"epoch must be >= 0, got {epoch}")
        epsilon = require_positive_float("epsilon", epsilon)
        self.charges.append(
            (str(subject), int(epoch), str(group), epsilon, str(mechanism))
        )

    def note_release(self, subject: str, epochs: Iterable[int]) -> None:
        """Count one window release of ``subject`` covering ``epochs``."""
        for epoch in epochs:
            key = (str(subject), int(epoch))
            self.releases[key] = self.releases.get(key, 0) + 1

    def subjects(self) -> List[str]:
        """Every subject with at least one charge, in first-seen order."""
        seen: Dict[str, None] = {}
        for subject, _, _, _, _ in self.charges:
            seen.setdefault(subject, None)
        return list(seen)

    def epoch_spend(self, subject: str) -> Dict[int, float]:
        """Per-epoch worst-case spend of one subject.

        Within an epoch, groups are disjoint cohorts: sequential
        composition inside a group, parallel across groups — exactly the
        :class:`BudgetLedger` rule, applied epoch by epoch.
        """
        per_group: Dict[Tuple[int, str], float] = {}
        for row_subject, epoch, group, epsilon, _ in self.charges:
            if row_subject != subject:
                continue
            key = (epoch, group)
            per_group[key] = per_group.get(key, 0.0) + epsilon
        spend: Dict[int, float] = {}
        for (epoch, _), total in per_group.items():
            spend[epoch] = max(spend.get(epoch, 0.0), total)
        return spend

    def worst_case_epsilon(self, subject: str) -> float:
        """Per-user loss assuming disjoint cohorts across epochs."""
        spend = self.epoch_spend(subject)
        return max(spend.values()) if spend else 0.0

    def lifetime_epsilon(self, subject: str) -> float:
        """Continual-observation bound for a user present in every epoch."""
        return sum(self.epoch_spend(subject).values())

    def summary(self) -> Dict[str, dict]:
        """JSON-compatible per-subject view for status endpoints."""
        report: Dict[str, dict] = {}
        for subject in self.subjects():
            spend = self.epoch_spend(subject)
            report[subject] = {
                "epochs_charged": len(spend),
                "worst_case_epsilon": max(spend.values()) if spend else 0.0,
                "lifetime_epsilon": sum(spend.values()),
                "releases": sum(
                    count
                    for (row_subject, _), count in self.releases.items()
                    if row_subject == subject
                ),
            }
        return report
