"""Privacy-budget bookkeeping.

LDP budget accounting is simple but worth making explicit, because the
paper's two-phase protocol leans on both classic composition results:

* **sequential composition** — running mechanisms ``R1 (eps1)`` and
  ``R2 (eps2)`` on the *same* user costs ``eps1 + eps2``;
* **parallel composition** — running mechanisms on *disjoint* user groups
  costs only the maximum of their budgets.  LDPJoinSketch+ exploits this:
  phase-1 sample users, phase-2 group-1 users, and phase-2 group-2 users
  are disjoint, so each group enjoys the full ``eps`` (Section V-A).

:class:`BudgetLedger` records the charges a protocol makes per user group
and exposes the worst-case per-user spend, which tests assert equals the
configured ``eps`` for every protocol in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ParameterError
from ..validation import require_positive_float

__all__ = ["PrivacySpec", "BudgetLedger"]


@dataclass(frozen=True)
class PrivacySpec:
    """Declared privacy target of a protocol run."""

    epsilon: float

    def __post_init__(self) -> None:
        require_positive_float("epsilon", self.epsilon)

    @property
    def e_epsilon(self) -> float:
        """``e^eps`` — the dominance ratio every output pair must satisfy."""
        import math

        return math.exp(self.epsilon)


@dataclass
class BudgetLedger:
    """Per-user-group ledger of privacy charges.

    Each charge records that every member of ``group`` was subjected to one
    ``eps``-LDP mechanism invocation.  Sequential composition applies within
    a group; parallel composition across groups.
    """

    charges: List[Tuple[str, float, str]] = field(default_factory=list)

    def charge(self, group: str, epsilon: float, mechanism: str) -> None:
        """Record one ``eps``-LDP invocation against every user in ``group``."""
        if not group:
            raise ParameterError("group must be a non-empty label")
        epsilon = require_positive_float("epsilon", epsilon)
        self.charges.append((group, epsilon, mechanism))

    def spend_by_group(self) -> Dict[str, float]:
        """Total (sequentially composed) spend per user group."""
        spend: Dict[str, float] = {}
        for group, epsilon, _ in self.charges:
            spend[group] = spend.get(group, 0.0) + epsilon
        return spend

    def worst_case_epsilon(self) -> float:
        """Per-user privacy loss: max over groups (parallel composition)."""
        spend = self.spend_by_group()
        return max(spend.values()) if spend else 0.0

    def assert_within(self, spec: PrivacySpec) -> None:
        """Raise if any user group exceeded the declared budget."""
        worst = self.worst_case_epsilon()
        if worst > spec.epsilon + 1e-12:
            raise ParameterError(
                f"budget exceeded: worst-case spend {worst} > declared {spec.epsilon}"
            )
