"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate which
part of the pipeline rejected the input:

``ParameterError``
    A configuration value (sketch shape, privacy budget, sampling rate, ...)
    is out of its legal range.  Subclass of :class:`ValueError` as well, so
    idiomatic ``except ValueError`` also works.
``DomainError``
    An item or an array of items falls outside the declared value domain.
``IncompatibleSketchError``
    Two sketches that must share hash functions / shape / privacy budget to
    be combined (joined, merged, compared) do not.
``ProtocolError``
    The client/server protocol was driven in an invalid order, for example
    estimating a join size before any report has been ingested.
``DataGenerationError``
    A synthetic dataset generator received an unsatisfiable request.
``UnknownEstimatorError``
    A name passed to the estimator registry (:mod:`repro.api`) does not
    resolve to any registered estimator, or a registration collides.
``BackendUnavailableError``
    A compute backend requested by name (:mod:`repro.backend`) is not
    registered or cannot be imported (e.g. ``"numba"`` without numba
    installed).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DomainError",
    "IncompatibleSketchError",
    "ProtocolError",
    "DataGenerationError",
    "UnknownEstimatorError",
    "BackendUnavailableError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A configuration parameter is outside its legal range."""


class DomainError(ReproError, ValueError):
    """An input item lies outside the declared value domain."""


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be combined (shape/hash/budget mismatch)."""


class ProtocolError(ReproError, RuntimeError):
    """The client/server protocol was used in an invalid order."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator received an unsatisfiable request."""


class UnknownEstimatorError(ReproError, KeyError):
    """An estimator-registry lookup or registration failed."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it plain
        return self.args[0] if self.args else ""


class BackendUnavailableError(ReproError, RuntimeError):
    """A requested compute backend is unknown or cannot be imported."""
