"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate which
part of the pipeline rejected the input:

``ParameterError``
    A configuration value (sketch shape, privacy budget, sampling rate, ...)
    is out of its legal range.  Subclass of :class:`ValueError` as well, so
    idiomatic ``except ValueError`` also works.
``DomainError``
    An item or an array of items falls outside the declared value domain.
``IncompatibleSketchError``
    Two sketches that must share hash functions / shape / privacy budget to
    be combined (joined, merged, compared) do not.
``ProtocolError``
    The client/server protocol was driven in an invalid order, for example
    estimating a join size before any report has been ingested.
``DataGenerationError``
    A synthetic dataset generator received an unsatisfiable request.
``UnknownEstimatorError``
    A name passed to the estimator registry (:mod:`repro.api`) does not
    resolve to any registered estimator, or a registration collides.
``BackendUnavailableError``
    A compute backend requested by name (:mod:`repro.backend`) is not
    registered or cannot be imported (e.g. ``"numba"`` without numba
    installed).
``PartialIntegrityError``
    A serialized :class:`~repro.distributed.PartialAggregate` payload
    failed its content checksum (bit flip, truncation).  Subclass of
    :class:`ParameterError`, so older ``except ParameterError`` handlers
    keep working.
``CheckpointCorruptError``
    A shard checkpoint file on disk is unreadable — torn write, garbage
    bytes, missing fields, or a failed payload checksum.  Recoverable:
    :func:`repro.distributed.ingest_with_checkpoint` falls back to a
    cold start when it sees this.
``InjectedFaultError`` / ``InjectedCrashError``
    Deterministic faults raised by an armed
    :class:`repro.reliability.FaultPlan` at a named fault point
    (:class:`InjectedCrashError` models a worker process dying).
``RetryExhaustedError``
    A :class:`repro.reliability.RetryPolicy` ran out of attempts; carries
    the full attempt ledger.
``ShardLostError``
    A sharded run lost shard partials it cannot absorb (every shard
    failed, or a shard is missing outside degraded mode).
``ReplicationError``
    Base of the replication-protocol rejections below; maps to HTTP 409
    in the service front-end.
``FencedEpochError``
    A node presented a fencing epoch older than the receiver's — the
    signature of a zombie primary writing after a failover.  Carries
    both epochs so the zombie can fence itself.
``NotPrimaryError``
    A client sent a write to a standby (or a fenced ex-primary); carries
    the node's role so clients can re-target.
``ReplicaGapError``
    A standby refused an out-of-order replication frame; carries the
    sequence it expects next so the primary can re-ship the gap.
``ReplicaDivergenceError``
    Two nodes hold *different* records at the same WAL sequence — a
    forked history (e.g. a zombie primary's un-replicated suffix after
    a failover).  Raised instead of acking so divergence can never
    silently count toward quorum.
``ReplicationQuorumError``
    A quorum-ack replication round could not reach enough standbys;
    the batch is WAL-durable locally but under-replicated — retryable.
``SweepWorkerLostError``
    The sweep pool lost worker tasks past the retry budget; names the
    grid cells whose results are missing.

The module also hosts :func:`require_merge_compatible` — the one place
every merge path (sketches, frequency oracles, sessions, partial
aggregates) validates parameter compatibility, so mismatched
k/m/epsilon/hash-seed combinations are rejected with uniform messages
instead of each class hand-rolling a subset of the checks.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "ReproError",
    "ParameterError",
    "DomainError",
    "IncompatibleSketchError",
    "ProtocolError",
    "DataGenerationError",
    "UnknownEstimatorError",
    "BackendUnavailableError",
    "PartialIntegrityError",
    "CheckpointCorruptError",
    "InjectedFaultError",
    "InjectedCrashError",
    "RetryExhaustedError",
    "ShardLostError",
    "SweepWorkerLostError",
    "ReplicationError",
    "FencedEpochError",
    "NotPrimaryError",
    "ReplicaGapError",
    "ReplicaDivergenceError",
    "ReplicationQuorumError",
    "require_merge_compatible",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A configuration parameter is outside its legal range."""


class DomainError(ReproError, ValueError):
    """An input item lies outside the declared value domain."""


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be combined (shape/hash/budget mismatch)."""


class ProtocolError(ReproError, RuntimeError):
    """The client/server protocol was used in an invalid order."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator received an unsatisfiable request."""


class UnknownEstimatorError(ReproError, KeyError):
    """An estimator-registry lookup or registration failed."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it plain
        return self.args[0] if self.args else ""


class BackendUnavailableError(ReproError, RuntimeError):
    """A requested compute backend is unknown or cannot be imported."""


class PartialIntegrityError(ParameterError):
    """A partial-aggregate payload failed its content checksum."""


class CheckpointCorruptError(ReproError, ValueError):
    """A shard checkpoint on disk is torn, garbled, or fails its checksum.

    ``path`` names the offending file; ``reason`` the failed validation.
    """

    def __init__(self, path, reason: str) -> None:
        self.path = path
        self.reason = str(reason)
        super().__init__(f"corrupt shard checkpoint {path}: {reason}")

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.path, self.reason))


class InjectedFaultError(ReproError, RuntimeError):
    """A deterministic fault fired by an armed FaultPlan.

    ``point`` is the fault-point name, ``context`` the call-site context
    the firing spec matched (shard id, cursor, attempt, ...).
    """

    def __init__(self, point: str, context: Mapping[str, Any]) -> None:
        self.point = str(point)
        self.context = dict(context)
        described = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        super().__init__(f"injected fault at {point!r} ({described or 'no context'})")

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.point, self.context))


class InjectedCrashError(InjectedFaultError):
    """An injected fault modelling a worker process dying mid-task."""


class RetryExhaustedError(ReproError, RuntimeError):
    """A RetryPolicy ran out of attempts.

    ``operation`` names the retried work; ``attempts`` is the ledger of
    :class:`repro.reliability.AttemptRecord` entries, one per failed
    attempt, in order.  The final error is chained as ``__cause__``.
    """

    def __init__(self, operation: str, attempts=()) -> None:
        self.operation = str(operation)
        self.attempts = tuple(attempts)
        super().__init__(
            f"{operation}: retries exhausted after {len(self.attempts)} attempt(s)"
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.operation, self.attempts))


class ShardLostError(ReproError, RuntimeError):
    """A sharded run lost shard partials it cannot degrade around."""

    def __init__(self, message: str, lost=()) -> None:
        self.lost = tuple(lost)
        super().__init__(message)

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.args[0], self.lost))


class SweepWorkerLostError(ReproError, RuntimeError):
    """The sweep pool lost worker tasks past the retry budget.

    ``cells`` names the grid cells (dataset, method, epsilon, ...) whose
    results are missing.
    """

    def __init__(self, message: str, cells=()) -> None:
        self.message = str(message)
        self.cells = tuple(cells)
        super().__init__(
            message + (f" [lost cells: {', '.join(map(str, cells))}]" if cells else "")
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.message, self.cells))


class ReplicationError(ReproError, RuntimeError):
    """Base of the replication-protocol rejections (HTTP 409 family)."""


class FencedEpochError(ReplicationError):
    """A write arrived under a fencing epoch older than the receiver's.

    This is split-brain prevention firing: after a failover the promoted
    node's epoch exceeds the old primary's, so the zombie's shipments are
    rejected with this error — and on seeing it the zombie fences itself.
    ``observed`` is the stale epoch presented, ``required`` the
    receiver's current epoch.
    """

    def __init__(self, observed: int, required: int) -> None:
        self.observed = int(observed)
        self.required = int(required)
        super().__init__(
            f"fencing epoch {self.observed} is stale (current epoch is "
            f"{self.required}); this node has been superseded"
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.observed, self.required))


class NotPrimaryError(ReplicationError):
    """A client write reached a node that must not accept writes."""

    def __init__(self, role: str, reason: str = "") -> None:
        self.role = str(role)
        self.reason = str(reason)
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"node is {role}, not an accepting primary{detail}"
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.role, self.reason))


class ReplicaGapError(ReplicationError):
    """A standby refused a replication frame it cannot order.

    ``expected`` is the WAL sequence the standby needs next; ``got`` the
    sequence the primary shipped.  The primary heals the gap by
    re-shipping from ``expected``.
    """

    def __init__(self, expected: int, got: int) -> None:
        self.expected = int(expected)
        self.got = int(got)
        super().__init__(
            f"replication gap: standby expects sequence {self.expected}, "
            f"got {self.got}"
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.expected, self.got))


class ReplicaDivergenceError(ReplicationError):
    """Two nodes hold different records at the same WAL sequence.

    The byte-identical-replica guarantee rests on both nodes agreeing
    on the record sequence; a mismatch means one side carries a forked
    suffix (typically a zombie primary's un-replicated writes after a
    failover).  ``sequence`` is the first diverging position; the
    holder of the stale fork must truncate and re-sync from there —
    acking it as a duplicate would count divergent histories toward
    quorum.
    """

    def __init__(self, sequence: int, reason: str = "") -> None:
        self.sequence = int(sequence)
        self.reason = str(reason)
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"replica histories diverge at WAL sequence {self.sequence}{detail}"
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.sequence, self.reason))


class ReplicationQuorumError(ReplicationError):
    """A quorum-ack replication round fell short of its ack target.

    The batch *is* WAL-durable on the primary — the failure is about
    replication breadth, not data loss — so the error is retryable:
    a duplicate submission re-drives shipping without re-folding.
    ``acked`` standbys confirmed out of ``total``; ``needed`` is the
    quorum target.
    """

    def __init__(self, acked: int, needed: int, total: int) -> None:
        self.acked = int(acked)
        self.needed = int(needed)
        self.total = int(total)
        super().__init__(
            f"replication quorum not reached: {self.acked}/{self.total} "
            f"standby ack(s), need {self.needed}"
        )

    def __reduce__(self):  # crosses process-pool boundaries intact
        return (type(self), (self.acked, self.needed, self.total))


def _values_equal(mine: Any, theirs: Any) -> bool:
    """Equality that also covers ndarrays and containers of ndarrays."""
    import numpy as np

    if isinstance(mine, np.ndarray) or isinstance(theirs, np.ndarray):
        return (
            isinstance(mine, np.ndarray)
            and isinstance(theirs, np.ndarray)
            and mine.dtype == theirs.dtype
            and np.array_equal(mine, theirs)
        )
    if isinstance(mine, (list, tuple)) and isinstance(theirs, (list, tuple)):
        return len(mine) == len(theirs) and all(
            _values_equal(a, b) for a, b in zip(mine, theirs)
        )
    if isinstance(mine, Mapping) and isinstance(theirs, Mapping):
        return set(mine) == set(theirs) and all(
            _values_equal(mine[key], theirs[key]) for key in mine
        )
    return bool(mine == theirs)


def _is_published_state(value: Any) -> bool:
    """Whether a mismatch message should avoid printing the value.

    Hash pools, hash-pair families and fingerprint digests identify
    *published* randomness shared by every shard; their reprs are either
    huge (coefficient arrays) or opaque (hex digests), so the message
    names the attribute instead of dumping both values.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, (list, tuple)):
        return any(_is_published_state(v) for v in value)
    # Duck-typed: serialisable hash structures with value equality
    # (HashPairs, KWiseHash) — to_dict plus a class-defined __eq__.
    return hasattr(value, "to_dict") and "__eq__" in type(value).__dict__


def require_merge_compatible(kind: str, **attributes: Any) -> None:
    """Raise :class:`IncompatibleSketchError` unless every attribute matches.

    ``attributes`` maps a parameter name to a ``(mine, theirs)`` pair; the
    first mismatching pair raises.  This is the single merge-compatibility
    gate shared by :meth:`repro.core.server.LDPJoinSketch.check_mergeable`,
    :meth:`repro.mechanisms.base.FrequencyOracle.merge`,
    :meth:`repro.api.JoinSession.merge` and the distributed
    :class:`~repro.distributed.PartialAggregate` — every path rejects
    mismatched k/m/epsilon/hash-seed combinations with the same message
    shape.

    Scalars are compared with ``==``; ndarrays (and containers of them,
    e.g. an FLH hash pool or a hash-pair family) with
    :func:`numpy.array_equal`, and their mismatch message says the shards
    must *share* the published state rather than dumping array reprs.

    >>> require_merge_compatible("sketches", m=(64, 64))
    >>> require_merge_compatible("sketches", m=(64, 128))
    Traceback (most recent call last):
        ...
    repro.errors.IncompatibleSketchError: cannot merge sketches: m mismatch (64 vs 128)
    """
    for name, pair in attributes.items():
        try:
            mine, theirs = pair
        except (TypeError, ValueError):
            raise ParameterError(
                f"require_merge_compatible expects (mine, theirs) pairs; "
                f"got {pair!r} for {name!r}"
            ) from None
        if _values_equal(mine, theirs):
            continue
        if _is_published_state(mine) or _is_published_state(theirs):
            raise IncompatibleSketchError(
                f"cannot merge {kind}: {name} differ; shards of one "
                f"collection period must share the published {name} "
                f"(same seed)"
            )
        raise IncompatibleSketchError(
            f"cannot merge {kind}: {name} mismatch ({mine!r} vs {theirs!r})"
        )
