"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate which
part of the pipeline rejected the input:

``ParameterError``
    A configuration value (sketch shape, privacy budget, sampling rate, ...)
    is out of its legal range.  Subclass of :class:`ValueError` as well, so
    idiomatic ``except ValueError`` also works.
``DomainError``
    An item or an array of items falls outside the declared value domain.
``IncompatibleSketchError``
    Two sketches that must share hash functions / shape / privacy budget to
    be combined (joined, merged, compared) do not.
``ProtocolError``
    The client/server protocol was driven in an invalid order, for example
    estimating a join size before any report has been ingested.
``DataGenerationError``
    A synthetic dataset generator received an unsatisfiable request.
``UnknownEstimatorError``
    A name passed to the estimator registry (:mod:`repro.api`) does not
    resolve to any registered estimator, or a registration collides.
``BackendUnavailableError``
    A compute backend requested by name (:mod:`repro.backend`) is not
    registered or cannot be imported (e.g. ``"numba"`` without numba
    installed).

The module also hosts :func:`require_merge_compatible` — the one place
every merge path (sketches, frequency oracles, sessions, partial
aggregates) validates parameter compatibility, so mismatched
k/m/epsilon/hash-seed combinations are rejected with uniform messages
instead of each class hand-rolling a subset of the checks.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "ReproError",
    "ParameterError",
    "DomainError",
    "IncompatibleSketchError",
    "ProtocolError",
    "DataGenerationError",
    "UnknownEstimatorError",
    "BackendUnavailableError",
    "require_merge_compatible",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A configuration parameter is outside its legal range."""


class DomainError(ReproError, ValueError):
    """An input item lies outside the declared value domain."""


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be combined (shape/hash/budget mismatch)."""


class ProtocolError(ReproError, RuntimeError):
    """The client/server protocol was used in an invalid order."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator received an unsatisfiable request."""


class UnknownEstimatorError(ReproError, KeyError):
    """An estimator-registry lookup or registration failed."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it plain
        return self.args[0] if self.args else ""


class BackendUnavailableError(ReproError, RuntimeError):
    """A requested compute backend is unknown or cannot be imported."""


def _values_equal(mine: Any, theirs: Any) -> bool:
    """Equality that also covers ndarrays and containers of ndarrays."""
    import numpy as np

    if isinstance(mine, np.ndarray) or isinstance(theirs, np.ndarray):
        return (
            isinstance(mine, np.ndarray)
            and isinstance(theirs, np.ndarray)
            and mine.dtype == theirs.dtype
            and np.array_equal(mine, theirs)
        )
    if isinstance(mine, (list, tuple)) and isinstance(theirs, (list, tuple)):
        return len(mine) == len(theirs) and all(
            _values_equal(a, b) for a, b in zip(mine, theirs)
        )
    if isinstance(mine, Mapping) and isinstance(theirs, Mapping):
        return set(mine) == set(theirs) and all(
            _values_equal(mine[key], theirs[key]) for key in mine
        )
    return bool(mine == theirs)


def _is_published_state(value: Any) -> bool:
    """Whether a mismatch message should avoid printing the value.

    Hash pools, hash-pair families and fingerprint digests identify
    *published* randomness shared by every shard; their reprs are either
    huge (coefficient arrays) or opaque (hex digests), so the message
    names the attribute instead of dumping both values.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, (list, tuple)):
        return any(_is_published_state(v) for v in value)
    # Duck-typed: serialisable hash structures with value equality
    # (HashPairs, KWiseHash) — to_dict plus a class-defined __eq__.
    return hasattr(value, "to_dict") and "__eq__" in type(value).__dict__


def require_merge_compatible(kind: str, **attributes: Any) -> None:
    """Raise :class:`IncompatibleSketchError` unless every attribute matches.

    ``attributes`` maps a parameter name to a ``(mine, theirs)`` pair; the
    first mismatching pair raises.  This is the single merge-compatibility
    gate shared by :meth:`repro.core.server.LDPJoinSketch.check_mergeable`,
    :meth:`repro.mechanisms.base.FrequencyOracle.merge`,
    :meth:`repro.api.JoinSession.merge` and the distributed
    :class:`~repro.distributed.PartialAggregate` — every path rejects
    mismatched k/m/epsilon/hash-seed combinations with the same message
    shape.

    Scalars are compared with ``==``; ndarrays (and containers of them,
    e.g. an FLH hash pool or a hash-pair family) with
    :func:`numpy.array_equal`, and their mismatch message says the shards
    must *share* the published state rather than dumping array reprs.

    >>> require_merge_compatible("sketches", m=(64, 64))
    >>> require_merge_compatible("sketches", m=(64, 128))
    Traceback (most recent call last):
        ...
    repro.errors.IncompatibleSketchError: cannot merge sketches: m mismatch (64 vs 128)
    """
    for name, pair in attributes.items():
        try:
            mine, theirs = pair
        except (TypeError, ValueError):
            raise ParameterError(
                f"require_merge_compatible expects (mine, theirs) pairs; "
                f"got {pair!r} for {name!r}"
            ) from None
        if _values_equal(mine, theirs):
            continue
        if _is_published_state(mine) or _is_published_state(theirs):
            raise IncompatibleSketchError(
                f"cannot merge {kind}: {name} differ; shards of one "
                f"collection period must share the published {name} "
                f"(same seed)"
            )
        raise IncompatibleSketchError(
            f"cannot merge {kind}: {name} mismatch ({mine!r} vs {theirs!r})"
        )
