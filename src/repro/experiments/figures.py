"""One experiment function per table/figure of the paper's evaluation.

Every function returns a :class:`~repro.experiments.reporting.ResultTable`
containing exactly the series the paper plots (plus the ground truth the
reader needs to judge shape).  Defaults reproduce the paper's parameter
settings at laptop scale; the ``scale`` argument controls the fraction of
the paper's stream lengths drawn from each population (see DESIGN.md for
why shapes are preserved under scaling).

Index (see also DESIGN.md section 3):

========  =================================================================
table2    dataset inventory
fig5      join-size RE per method per dataset (eps=4, k=18, m=1024)
fig6      AE vs space cost (Zipf 2.0, eps=10)
fig7      communication cost per method (Zipf 1.1, MovieLens)
fig8      AE vs privacy budget eps (4 datasets)
fig9      AE vs sketch width m and depth k (4 datasets)
fig10     AE vs phase-1 sampling rate r (Zipf 1.1)
fig11     AE vs frequent-item threshold theta (Zipf 1.1)
fig12     RE vs Zipf skewness alpha
fig13     offline/online running time per method (3 datasets)
fig14     frequency-estimation MSE vs eps (Zipf 1.5, MovieLens)
fig15     multiway chain joins: RE vs eps (3-way and 4-way)
========  =============================================================
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..data import ZipfGenerator, make_join_instance
from ..data.registry import DATASETS
from ..mechanisms import (
    FLHOracle,
    HCMSOracle,
    KRROracle,
    LDPJoinSketchOracle,
)
from ..rng import derive_seed, ensure_rng
from .chains import (
    compass_estimate,
    frequency_chain_estimate,
    ldp_compass_estimate,
    make_chain_instance,
)
from .harness import run_trials, summarize
from ..api import get_estimator
from ..api.registry import JoinEstimator
from .methods import default_methods
from .metrics import mean_squared_error
from .reporting import ResultTable
from .sweep import iter_sweep, plan_grid

__all__ = [
    "table2_datasets",
    "fig5_accuracy",
    "fig6_space",
    "fig7_communication",
    "fig8_epsilon",
    "fig9_sketch_size",
    "fig10_sampling_rate",
    "fig11_threshold",
    "fig12_skewness",
    "fig13_efficiency",
    "fig14_frequency",
    "fig15_multiway",
    "ALL_EXPERIMENTS",
]

#: Datasets shown in Fig. 5 (the full Table II line-up).
FIG5_DATASETS = ("zipf-1.1", "gaussian", "movielens", "tpcds", "twitter", "facebook")


def table2_datasets(scale: float = 0.002, seed: int = 2024) -> ResultTable:
    """Table II: the dataset inventory, paper shape vs generated shape."""
    table = ResultTable(
        "Table II: datasets (paper shape vs laptop-scale sample)",
        [
            "dataset",
            "paper_domain",
            "paper_size",
            "our_domain",
            "sample_size",
            "distinct",
            "top1_share",
        ],
    )
    rng = ensure_rng(seed)
    for name in FIG5_DATASETS:
        spec = DATASETS[name]
        instance = make_join_instance(name, scale=scale, seed=derive_seed(rng))
        freq = instance.frequency_a
        table.add_row(
            name,
            spec.paper_domain,
            spec.paper_size,
            instance.domain_size,
            instance.size_a,
            freq.distinct,
            float(freq.counts.max() / max(freq.total, 1)),
        )
    table.add_note("zipf domain scaled to 2^18 for laptop runs (paper: up to 2.8M)")
    return table


def _accuracy_sweep(
    title: str,
    datasets: Sequence[str],
    methods: Dict[str, JoinEstimator],
    epsilons: Sequence[float],
    *,
    scale: float,
    trials: int,
    seed: int,
    metric_headers: Sequence[str] = ("ae", "re"),
    workers: int = 1,
    trial_axis: str = "exact",
) -> ResultTable:
    """Shared driver: (dataset x method x epsilon) accuracy grid.

    Routed through the sweep engine (:mod:`repro.experiments.sweep`):
    the grid is expanded into a deterministic plan whose seeds derive in
    the historical order, so ``workers=1`` reproduces the legacy serial
    loop bit for bit and any ``workers`` count reproduces ``workers=1``.
    """
    table = ResultTable(
        title,
        ["dataset", "method", "epsilon", "truth", "mean_estimate", *metric_headers],
    )
    plan = plan_grid(
        datasets, methods, epsilons, trials, scale=scale, seed=seed, trial_axis=trial_axis
    )
    for unit, records in iter_sweep(plan, workers=workers):
        for epsilon in unit.epsilons:
            stats = summarize([r for r in records if r.epsilon == epsilon])
            table.add_row(
                unit.dataset,
                unit.method,
                float(epsilon),
                stats["truth"],
                stats["mean_estimate"],
                *[stats[h] for h in metric_headers],
            )
    return table


def fig5_accuracy(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    datasets: Sequence[str] = FIG5_DATASETS,
    workers: int = 1,
) -> ResultTable:
    """Fig. 5: join-size RE of all six methods on all six datasets."""
    methods = default_methods(k, m)
    table = _accuracy_sweep(
        "Fig. 5: join-size estimation accuracy (RE) per dataset",
        datasets,
        methods,
        [epsilon],
        scale=scale,
        trials=trials,
        seed=seed,
        workers=workers,
    )
    table.add_note(f"paper setting: epsilon={epsilon}, (k={k}, m={m})")
    return table


def fig6_space(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilon: float = 10.0,
    k: int = 18,
    widths: Sequence[int] = (256, 512, 1024, 2048, 4096),
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    workers: int = 1,
) -> ResultTable:
    """Fig. 6: AE vs total sketch space on Zipf(2.0).

    Space cost per the paper: HCMS and LDPJoinSketch hold one sketch per
    table; LDPJoinSketch+ holds the phase-1 pair plus four phase-2
    sketches (same size in both phases), so its phase-2 space is roughly
    twice phase 1's.
    """
    table = ResultTable(
        "Fig. 6: AE vs space cost, Zipf(alpha=2.0)",
        ["method", "m", "space_kb", "truth", "ae"],
    )
    rng = ensure_rng(seed)
    instance = make_join_instance("zipf-2.0", scale=scale, seed=derive_seed(rng))
    for m in widths:
        methods: List[JoinEstimator] = [
            get_estimator("hcms", k=k, m=m),
            get_estimator("ldp-join-sketch", k=k, m=m),
            get_estimator(
                "ldp-join-sketch-plus",
                k=k,
                m=m,
                sample_rate=sample_rate,
                threshold=threshold,
            ),
        ]
        for method in methods:
            records = run_trials(
                method, instance, epsilon, trials, derive_seed(rng), workers=workers
            )
            stats = summarize(records)
            table.add_row(
                method.name,
                int(m),
                stats["sketch_bytes"] / 1024.0,
                stats["truth"],
                stats["ae"],
            )
    table.add_note(f"paper setting: epsilon={epsilon}, r={sample_rate}, theta={threshold}")
    return table


def fig7_communication(
    scale: float = 0.002,
    seed: int = 2024,
    *,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    datasets: Sequence[str] = ("zipf-1.1", "movielens"),
) -> ResultTable:
    """Fig. 7: total uplink bits per method."""
    table = ResultTable(
        "Fig. 7: communication cost (total uplink bits)",
        ["dataset", "method", "clients", "bits_per_report", "total_bits"],
    )
    rng = ensure_rng(seed)
    methods: List[JoinEstimator] = [
        get_estimator("krr"),
        get_estimator("hcms", k=k, m=m),
        get_estimator("flh"),
        get_estimator("ldp-join-sketch", k=k, m=m),
    ]
    for dataset in datasets:
        instance = make_join_instance(dataset, scale=scale, seed=derive_seed(rng))
        clients = instance.size_a + instance.size_b
        for method in methods:
            bits = method.report_bits_for(instance.domain_size, epsilon)
            table.add_row(dataset, method.name, clients, bits, clients * bits)
    table.add_note(f"paper setting: epsilon={epsilon}, (k={k}, m={m})")
    return table


def fig8_epsilon(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilons: Sequence[float] = (0.1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    k: int = 18,
    m: int = 1024,
    datasets: Sequence[str] = ("zipf-1.5", "gaussian", "movielens", "twitter"),
    workers: int = 1,
) -> ResultTable:
    """Fig. 8 (a-d): AE vs privacy budget epsilon."""
    methods = default_methods(k, m)
    table = _accuracy_sweep(
        "Fig. 8: AE vs privacy budget epsilon",
        datasets,
        methods,
        epsilons,
        scale=scale,
        trials=trials,
        seed=seed,
        workers=workers,
    )
    table.add_note(f"paper setting: (k={k}, m={m}); one panel per dataset")
    return table


def fig9_sketch_size(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilon: float = 10.0,
    widths: Sequence[int] = (512, 1024, 2048, 4096, 8192),
    depths: Sequence[int] = (9, 12, 18, 21, 28, 30, 36),
    fixed_k: int = 18,
    fixed_m: int = 1024,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    datasets: Sequence[str] = ("zipf-1.1", "zipf-2.0", "movielens", "twitter"),
    workers: int = 1,
) -> ResultTable:
    """Fig. 9: AE vs sketch width m (a-d) and depth k (e-h)."""
    table = ResultTable(
        "Fig. 9: AE vs sketch parameters (m sweep with k fixed; k sweep with m fixed)",
        ["dataset", "sweep", "k", "m", "method", "truth", "ae"],
    )
    rng = ensure_rng(seed)

    def sketch_methods(k: int, m: int) -> List[JoinEstimator]:
        return [
            get_estimator("fagms", k=k, m=m),
            get_estimator("hcms", k=k, m=m),
            get_estimator("ldp-join-sketch", k=k, m=m),
            get_estimator(
                "ldp-join-sketch-plus",
                k=k,
                m=m,
                sample_rate=sample_rate,
                threshold=threshold,
            ),
        ]

    for dataset in datasets:
        instance = make_join_instance(dataset, scale=scale, seed=derive_seed(rng))
        for m in widths:
            for method in sketch_methods(fixed_k, m):
                records = run_trials(
                    method, instance, epsilon, trials, derive_seed(rng), workers=workers
                )
                stats = summarize(records)
                table.add_row(dataset, "m", fixed_k, int(m), method.name, stats["truth"], stats["ae"])
        for k in depths:
            for method in sketch_methods(k, fixed_m):
                records = run_trials(
                    method, instance, epsilon, trials, derive_seed(rng), workers=workers
                )
                stats = summarize(records)
                table.add_row(dataset, "k", int(k), fixed_m, method.name, stats["truth"], stats["ae"])
    table.add_note(f"paper setting: epsilon={epsilon}, r={sample_rate}")
    return table


def fig10_sampling_rate(
    scale: float = 0.002,
    trials: int = 5,
    seed: int = 2024,
    *,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    rates: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30),
    threshold: float = 0.01,
    workers: int = 1,
) -> ResultTable:
    """Fig. 10: LDPJoinSketch+ AE vs phase-1 sampling rate r on Zipf(1.1)."""
    table = ResultTable(
        "Fig. 10: AE vs phase-1 sampling rate r, Zipf(alpha=1.1)",
        ["r", "truth", "ae"],
    )
    rng = ensure_rng(seed)
    instance = make_join_instance("zipf-1.1", scale=scale, seed=derive_seed(rng))
    for rate in rates:
        method = get_estimator(
            "ldp-join-sketch-plus", k=k, m=m, sample_rate=rate, threshold=threshold
        )
        records = run_trials(
            method, instance, epsilon, trials, derive_seed(rng), workers=workers
        )
        stats = summarize(records)
        table.add_row(float(rate), stats["truth"], stats["ae"])
    table.add_note(f"paper setting: epsilon={epsilon}, (k={k}, m={m}), theta={threshold}")
    return table


def fig11_threshold(
    scale: float = 0.002,
    trials: int = 5,
    seed: int = 2024,
    *,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    thresholds: Sequence[float] = (5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1),
    sample_rate: float = 0.1,
) -> ResultTable:
    """Fig. 11: LDPJoinSketch+ AE vs frequent-item threshold theta."""
    table = ResultTable(
        "Fig. 11: AE vs frequent-item threshold theta, Zipf(alpha=1.1)",
        ["theta", "truth", "ae", "fi_size"],
    )
    rng = ensure_rng(seed)
    instance = make_join_instance("zipf-1.1", scale=scale, seed=derive_seed(rng))
    from ..core import LDPJoinSketchPlus, SketchParams  # local import to avoid cycle

    for theta in thresholds:
        protocol = LDPJoinSketchPlus(
            SketchParams(k, m, epsilon), sample_rate=sample_rate, threshold=theta
        )
        estimates = []
        fi_sizes = []
        for _ in range(trials):
            result = protocol.estimate(
                instance.values_a, instance.values_b, instance.domain_size, derive_seed(rng)
            )
            estimates.append(result.estimate)
            fi_sizes.append(result.frequent_items.size)
        truth = float(instance.true_join_size)
        table.add_row(
            float(theta),
            truth,
            float(np.mean(np.abs(np.asarray(estimates) - truth))),
            float(np.mean(fi_sizes)),
        )
    table.add_note(f"paper setting: epsilon={epsilon}, (k={k}, m={m}), r={sample_rate}")
    return table


def fig12_skewness(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    alphas: Sequence[float] = (1.1, 1.3, 1.5, 1.7, 1.9),
    workers: int = 1,
) -> ResultTable:
    """Fig. 12: RE vs Zipf skewness alpha, all six methods."""
    methods = default_methods(k, m)
    datasets = [f"zipf-{alpha}" for alpha in alphas]
    table = _accuracy_sweep(
        "Fig. 12: RE vs Zipf skewness alpha",
        datasets,
        methods,
        [epsilon],
        scale=scale,
        trials=trials,
        seed=seed,
        workers=workers,
    )
    table.add_note(f"paper setting: epsilon={epsilon}, (k={k}, m={m})")
    return table


def fig13_efficiency(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    datasets: Sequence[str] = ("zipf-1.1", "gaussian", "twitter"),
    workers: int = 1,
) -> ResultTable:
    """Fig. 13: offline (collect + construct) vs online (query) seconds."""
    table = ResultTable(
        "Fig. 13: running time per method (offline = collection + construction, online = query)",
        ["dataset", "method", "offline_seconds", "online_seconds"],
    )
    rng = ensure_rng(seed)
    methods = default_methods(k, m)
    for dataset in datasets:
        instance = make_join_instance(dataset, scale=scale, seed=derive_seed(rng))
        for method in methods.values():
            # vectorize=False: this figure *is* the timing measurement, so
            # each trial must pay (and report) one full collect+construct
            # run rather than an evenly split shared batch.
            records = run_trials(
                method,
                instance,
                epsilon,
                trials,
                derive_seed(rng),
                workers=workers,
                vectorize=False,
            )
            stats = summarize(records)
            table.add_row(dataset, method.name, stats["offline_seconds"], stats["online_seconds"])
    return table


def fig14_frequency(
    scale: float = 0.002,
    trials: int = 2,
    seed: int = 2024,
    *,
    epsilons: Sequence[float] = (0.5, 1, 2, 4, 6, 8, 10),
    k: int = 18,
    m: int = 1024,
    datasets: Sequence[str] = ("zipf-1.5", "movielens"),
) -> ResultTable:
    """Fig. 14: frequency-estimation MSE vs epsilon.

    MSE is computed over the distinct values appearing in the stream, per
    the paper's metric definition.
    """
    table = ResultTable(
        "Fig. 14: frequency-estimation MSE vs epsilon",
        ["dataset", "mechanism", "epsilon", "mse"],
    )
    rng = ensure_rng(seed)
    oracle_factories = {
        "k-RR": lambda d, e, s: KRROracle(d, e, s),
        "Apple-HCMS": lambda d, e, s: HCMSOracle(d, e, s, k=k, m=m),
        "FLH": lambda d, e, s: FLHOracle(d, e, s),
        "LDPJoinSketch": lambda d, e, s: LDPJoinSketchOracle(d, e, s, k=k, m=m),
    }
    for dataset in datasets:
        instance = make_join_instance(dataset, scale=scale, seed=derive_seed(rng))
        freq = instance.frequency_a
        support = np.flatnonzero(freq.counts)
        true_counts = freq.counts[support].astype(np.float64)
        for name, factory in oracle_factories.items():
            for epsilon in epsilons:
                mses = []
                for _ in range(trials):
                    oracle = factory(instance.domain_size, float(epsilon), derive_seed(rng))
                    oracle.collect(instance.values_a)
                    mses.append(
                        mean_squared_error(true_counts, oracle.frequencies(support))
                    )
                table.add_row(dataset, name, float(epsilon), float(np.mean(mses)))
    table.add_note("MSE over distinct values of the stream (paper metric)")
    return table


def fig15_multiway(
    scale: float = 0.002,
    trials: int = 3,
    seed: int = 2024,
    *,
    epsilons: Sequence[float] = (0.1, 1, 2, 4, 6, 8, 10),
    k: int = 18,
    m: int = 256,
    domain: int = 2048,
    alpha: float = 1.5,
    flh_pool_size: int = 64,
) -> ResultTable:
    """Fig. 15: multiway chain joins, RE vs epsilon.

    3-way chains are evaluated with all methods; 4-way chains only with
    Compass and LDPJoinSketch (the frequency-based methods' product-domain
    cost is prohibitive — the paper makes the same cut).  The per-attribute
    domain is chosen so the middle table's *product* domain (``domain^2``)
    is far larger than the sketch width — the paper's large-domain regime
    where frequency-vector baselines accumulate error.
    """
    table = ResultTable(
        "Fig. 15: multiway chain joins, RE vs epsilon, Zipf(alpha=1.5)",
        ["query", "method", "epsilon", "truth", "mean_estimate", "re"],
    )
    rng = ensure_rng(seed)
    generator = ZipfGenerator(domain, alpha=alpha)
    table_size = max(1000, int(round(40_000_000 * scale / 4)))

    def add(query: str, method: str, epsilon: float, truth: float, estimates: List[float]) -> None:
        mean_est = float(np.mean(estimates))
        re = float(np.mean(np.abs(np.asarray(estimates) - truth)) / truth)
        table.add_row(query, method, float(epsilon), truth, mean_est, re)

    freq_baselines = {
        "k-RR": (KRROracle, {}),
        "Apple-HCMS": (HCMSOracle, {"k": k, "m": m}),
        "FLH": (FLHOracle, {"pool_size": flh_pool_size}),
    }

    for num_way in (3, 4):
        chain = make_chain_instance(num_way, generator, table_size, derive_seed(rng))
        truth = float(chain.true_size)
        query = f"{num_way}-way"

        estimates = [
            compass_estimate(chain, k, m, derive_seed(rng)) for _ in range(trials)
        ]
        add(query, "Compass", 0.0, truth, estimates)

        for epsilon in epsilons:
            estimates = [
                ldp_compass_estimate(chain, k, m, float(epsilon), derive_seed(rng))
                for _ in range(trials)
            ]
            add(query, "LDPJoinSketch", float(epsilon), truth, estimates)

        if num_way == 3:
            for name, (oracle_cls, kwargs) in freq_baselines.items():
                for epsilon in epsilons:
                    estimates = [
                        frequency_chain_estimate(
                            oracle_cls, chain, float(epsilon), derive_seed(rng), **kwargs
                        )
                        for _ in range(trials)
                    ]
                    add(query, name, float(epsilon), truth, estimates)
    table.add_note(
        f"domain={domain} per attribute (product domain {domain * domain} for "
        "frequency baselines); Compass rows report epsilon=0 (non-private)"
    )
    return table


#: Name -> callable registry used by the CLI and the benchmark suite.
ALL_EXPERIMENTS = {
    "table2": table2_datasets,
    "fig5": fig5_accuracy,
    "fig6": fig6_space,
    "fig7": fig7_communication,
    "fig8": fig8_epsilon,
    "fig9": fig9_sketch_size,
    "fig10": fig10_sampling_rate,
    "fig11": fig11_threshold,
    "fig12": fig12_skewness,
    "fig13": fig13_efficiency,
    "fig14": fig14_frequency,
    "fig15": fig15_multiway,
}
