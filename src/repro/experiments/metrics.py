"""Error metrics of the evaluation (Section VII-A).

* **Absolute Error (AE)**: ``mean_t |J - J^_t|`` over testing rounds;
* **Relative Error (RE)**: ``mean_t |J - J^_t| / J``;
* **Mean Squared Error (MSE)** for frequency estimation:
  ``mean_d (f(d) - f~(d))^2`` over the distinct values of the data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["absolute_error", "relative_error", "mean_squared_error"]


def absolute_error(truth: float, estimates: Iterable[float]) -> float:
    """``mean |J - J^|`` over one or more trial estimates."""
    arr = np.asarray(list(np.atleast_1d(estimates)), dtype=np.float64)
    if arr.size == 0:
        raise ParameterError("need at least one estimate")
    return float(np.mean(np.abs(arr - truth)))


def relative_error(truth: float, estimates: Iterable[float]) -> float:
    """``mean |J - J^| / J`` over one or more trial estimates."""
    if truth == 0:
        raise ParameterError("relative error undefined for zero true value")
    return absolute_error(truth, estimates) / abs(truth)


def mean_squared_error(
    true_counts: Sequence[float],
    estimated_counts: Sequence[float],
) -> float:
    """``mean_d (f(d) - f~(d))^2`` over aligned count vectors."""
    truth = np.asarray(true_counts, dtype=np.float64)
    est = np.asarray(estimated_counts, dtype=np.float64)
    if truth.shape != est.shape:
        raise ParameterError(
            f"count vectors must align, got {truth.shape} vs {est.shape}"
        )
    if truth.size == 0:
        raise ParameterError("need at least one value")
    return float(np.mean((truth - est) ** 2))
