"""Experiment harness regenerating every table and figure of the paper.

Layout:

* :mod:`repro.experiments.metrics` — AE / RE / MSE (Section VII metrics);
* :mod:`repro.experiments.methods` — back-compat names for the
  evaluation's estimators, now served by the :mod:`repro.api` registry;
* :mod:`repro.experiments.harness` — repeated-trial runner;
* :mod:`repro.experiments.sweep` — deterministic grid scheduler: expands
  (dataset × method × epsilon × trial) into work units, executes them
  serially or on a process pool (datasets shared via shared memory) with
  bit-identical results for every worker count;
* :mod:`repro.experiments.chains` — multiway chain-join workloads;
* :mod:`repro.experiments.figures` — one function per table/figure
  (``table2``, ``fig5_accuracy`` ... ``fig15_multiway``);
* :mod:`repro.experiments.reporting` — plain-text / CSV result tables;
* :mod:`repro.experiments.cli` — ``python -m repro.experiments`` /
  ``repro-experiments`` command line.
"""

from .metrics import absolute_error, relative_error, mean_squared_error
from .methods import (
    FAGMSMethod,
    HCMSMethod,
    JoinMethod,
    KRRMethod,
    FLHMethod,
    LDPJoinSketchMethod,
    LDPJoinSketchPlusMethod,
    MethodResult,
    default_methods,
)
from .harness import TrialRecord, run_seeded_trials, run_trials, summarize
from .reporting import ResultTable
from .chains import ChainInstance, make_chain_instance
from .sweep import SweepPlan, SweepUnit, iter_sweep, plan_grid, run_sweep, sweep_table

__all__ = [
    "absolute_error",
    "relative_error",
    "mean_squared_error",
    "JoinMethod",
    "MethodResult",
    "FAGMSMethod",
    "KRRMethod",
    "FLHMethod",
    "HCMSMethod",
    "LDPJoinSketchMethod",
    "LDPJoinSketchPlusMethod",
    "default_methods",
    "TrialRecord",
    "run_trials",
    "run_seeded_trials",
    "summarize",
    "SweepPlan",
    "SweepUnit",
    "plan_grid",
    "run_sweep",
    "iter_sweep",
    "sweep_table",
    "ResultTable",
    "ChainInstance",
    "make_chain_instance",
]
