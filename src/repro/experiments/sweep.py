"""Vectorized multi-trial sweep engine: deterministic grids, parallel units.

Every figure of the paper is a sweep over (dataset × method × epsilon ×
trial).  This module turns that loop into an explicit, schedulable plan:

* :func:`plan_grid` expands a grid into :class:`SweepUnit` work units,
  drawing every seed up front **in the historical order** (one instance
  seed per dataset, then one unit seed per (method, epsilon)) — so the
  plan is a pure function of the master seed and ``workers=1`` reproduces
  the legacy serial harness bit for bit;
* :func:`run_sweep` / :func:`iter_sweep` execute the units either
  in-process or on a ``ProcessPoolExecutor``, with each dataset's value
  arrays placed once in ``multiprocessing.shared_memory`` and attached by
  the workers (never pickled per task).  Results stream back in plan
  order and are **bit-identical for every worker count**, because all
  randomness is fixed by the plan, not by scheduling;
* ``trial_axis="grouped"`` switches a grid cell block to the shared-pass
  fast mode: per (dataset, method) group, hash pairs and the sample/hash
  pass are drawn once and shared by every (epsilon × trial) cell, with
  only the flip channel re-drawn per trial (common random numbers across
  epsilons — see
  :func:`repro.core.client.encode_reports_grouped_into`).  Marginal
  per-cell distributions are unchanged; cross-cell correlations are the
  price of hashing once, so the exact mode stays the default.

The engine is what the CLI's ``--workers`` flag and the figure functions
route through; :func:`sweep_table` is the ad-hoc entry point
(``python -m repro.experiments sweep ...``).

Fault tolerance (:mod:`repro.reliability`): ``retries=`` / ``fault_plan=``
thread a :class:`~repro.reliability.RetryPolicy` and a deterministic
:class:`~repro.reliability.FaultPlan` through both execution paths.
Workers arm the shipped plan on task entry and pass the ``sweep.unit`` /
``sweep.shard`` fault points (marked *crashable*, so ``hard_crashes``
plans produce a genuine ``BrokenProcessPool``); the parent catches broken
pools and retryable worker errors, restarts the pool, and resubmits the
failed task specs under the retry budget — raising
:class:`~repro.errors.SweepWorkerLostError` naming the lost grid cells
when the budget runs out.  Absorbable schedules leave the output
bit-identical to a fault-free run, because every task is a pure function
of plan data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.registry import JoinEstimator, get_estimator
from ..data.base import JoinInstance
from ..data.registry import make_join_instance
from ..errors import ParameterError, RetryExhaustedError, SweepWorkerLostError
from ..reliability.faults import FaultPlan, attempt_scope, fault_point, injected
from ..reliability.retry import DEFAULT_RETRYABLE, RetryPolicy
from ..rng import RandomState, derive_seed, ensure_rng
from ..validation import require_positive_int
from .harness import TrialRecord, run_seeded_trials, run_trials
from .reporting import ResultTable

__all__ = [
    "SweepUnit",
    "SweepPlan",
    "plan_grid",
    "run_sweep",
    "iter_sweep",
    "run_seeded_trials_parallel",
    "sweep_table",
    "window_sweep_table",
]


@dataclass(frozen=True)
class SweepUnit:
    """One schedulable work unit of a sweep.

    Three shapes, distinguished by which seed fields are set:

    * **exact grid point** — ``seed`` set: run ``trials`` trials of one
      (dataset, method, epsilon) point, deriving trial seeds from
      ``seed`` exactly as :func:`repro.experiments.harness.run_trials`
      does (the legacy-compatible default);
    * **explicit seeds** — ``trial_seeds`` set, ``group_seed`` unset: one
      trial per listed seed (used to split one grid point's trials
      across workers without changing their seeds);
    * **trial group** — ``group_seed`` set: a whole (epsilon × trial)
      block sharing one hash/sample pass (grouped mode).
    """

    index: int
    dataset: str
    method: str
    epsilons: Tuple[float, ...]
    trials: int
    seed: Optional[int] = None
    group_seed: Optional[int] = None
    trial_seeds: Tuple[int, ...] = ()
    #: False forces one full estimate per trial (timing-fidelity mode).
    vectorize: bool = True
    #: > 0 runs every trial as that many shard aggregators + a merge tree
    #: (:mod:`repro.distributed`); 0 keeps the whole-trial execution.
    shards: int = 0


@dataclass
class SweepPlan:
    """A fully expanded sweep: instances, estimators and ordered units."""

    instances: Dict[str, JoinInstance]
    estimators: Dict[str, JoinEstimator]
    units: List[SweepUnit] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.units)


def _resolve_methods(
    methods: Union[Dict[str, JoinEstimator], Iterable[Union[str, JoinEstimator]]],
    **options,
) -> Dict[str, JoinEstimator]:
    """Normalise a method spec into an ordered ``{display name: estimator}``."""
    if isinstance(methods, dict):
        return dict(methods)
    resolved: Dict[str, JoinEstimator] = {}
    for entry in methods:
        if isinstance(entry, str):
            try:
                estimator = get_estimator(entry, **options)
            except TypeError as exc:
                # Methods without sketch shape (k-RR, FLH, ...) reject the
                # k/m options the sketch methods take; retry bare — but
                # only for that specific rejection, so a genuine factory
                # bug (or a misspelled option on a method that *does*
                # accept options) still surfaces instead of silently
                # running a default configuration.
                if "unexpected keyword argument" not in str(exc):
                    raise
                estimator = get_estimator(entry)
        else:
            estimator = entry
        resolved[estimator.name] = estimator
    return resolved


def plan_grid(
    datasets: Sequence[str],
    methods: Union[Dict[str, JoinEstimator], Iterable[Union[str, JoinEstimator]]],
    epsilons: Sequence[float],
    trials: int,
    *,
    scale: float = 0.002,
    size: Optional[int] = None,
    seed: RandomState = None,
    trial_axis: str = "exact",
    shards: Optional[int] = None,
    instances: Optional[Dict[str, JoinInstance]] = None,
) -> SweepPlan:
    """Expand a (dataset × method × epsilon × trial) grid into a plan.

    Seeds derive from ``seed`` in the exact order the legacy serial
    figures used — per dataset one instance seed, then per (method,
    epsilon) one unit seed — so executing the plan with ``workers=1``
    reproduces the historical output bit for bit, and any other worker
    count reproduces ``workers=1``.  ``instances`` short-circuits dataset
    generation (the instance seeds are still drawn, keeping unit seeds
    stable).

    ``trial_axis="grouped"`` emits one unit per (dataset, method)
    covering the whole epsilon axis; its seeds (one group seed plus one
    seed per trial) come from the same master stream, so grouped plans
    are equally deterministic — but they are a *different* experiment
    layout, not a bit-compatible accelerator of the exact mode.

    ``shards=K`` (exact mode only) runs every trial as ``K`` shard
    aggregators reduced by a merge tree (:mod:`repro.distributed`):
    worker pools then ship *partials* instead of whole trials, and the
    parent tree-merges — still bit-identical for every worker count,
    because shard randomness is fixed by the plan.  ``shards=1`` is the
    identity plan, bit-identical to an unsharded run.
    """
    if trial_axis not in ("exact", "grouped"):
        raise ParameterError(
            f"trial_axis must be 'exact' or 'grouped', got {trial_axis!r}"
        )
    if shards is not None:
        shards = require_positive_int("shards", shards)
        if trial_axis != "exact":
            raise ParameterError(
                "shards applies to the exact trial axis only (grouped units "
                "share one hash/sample pass and cannot split into partials)"
            )
    trials = require_positive_int("trials", trials)
    methods = _resolve_methods(methods)
    if not methods:
        raise ParameterError("need at least one method")
    epsilons = [float(e) for e in epsilons]
    if not epsilons:
        raise ParameterError("need at least one epsilon")
    rng = ensure_rng(seed)
    plan = SweepPlan(instances={}, estimators=methods)
    for dataset in datasets:
        instance_seed = derive_seed(rng)
        if instances is not None and dataset in instances:
            plan.instances[dataset] = instances[dataset]
        else:
            plan.instances[dataset] = make_join_instance(
                dataset, scale=scale, size=size, seed=instance_seed
            )
        for name in methods:
            if trial_axis == "grouped":
                group_seed = derive_seed(rng)
                trial_seeds = tuple(derive_seed(rng) for _ in range(trials))
                plan.units.append(
                    SweepUnit(
                        index=len(plan.units),
                        dataset=dataset,
                        method=name,
                        epsilons=tuple(epsilons),
                        trials=trials,
                        group_seed=group_seed,
                        trial_seeds=trial_seeds,
                    )
                )
            else:
                for epsilon in epsilons:
                    plan.units.append(
                        SweepUnit(
                            index=len(plan.units),
                            dataset=dataset,
                            method=name,
                            epsilons=(epsilon,),
                            trials=trials,
                            seed=derive_seed(rng),
                            shards=shards or 0,
                        )
                    )
    return plan


# ----------------------------------------------------------------------
# Unit execution (same code in-process and in workers)
# ----------------------------------------------------------------------
def _records_from_results(
    method_name: str, instance: JoinInstance, epsilon: float, results
) -> List[TrialRecord]:
    truth = float(instance.true_join_size)
    return [
        TrialRecord(
            method=method_name,
            dataset=instance.name,
            epsilon=epsilon,
            truth=truth,
            estimate=r.estimate,
            offline_seconds=r.offline_seconds,
            online_seconds=r.online_seconds,
            uplink_bits=r.uplink_bits,
            sketch_bytes=r.sketch_bytes,
        )
        for r in results
    ]


def _unit_trial_seeds(unit: SweepUnit) -> List[int]:
    """The unit's per-trial seeds, derived exactly as ``run_trials`` does."""
    if unit.trial_seeds:
        return list(unit.trial_seeds)
    rng = ensure_rng(unit.seed)
    return [derive_seed(rng) for _ in range(unit.trials)]


def _execute_unit_sharded(
    unit: SweepUnit, estimator: JoinEstimator, instance: JoinInstance
) -> List[TrialRecord]:
    """In-process sharded execution: per trial, K partials + a merge tree.

    Produces exactly the records the pool's partial-shipping path
    assembles — :func:`repro.distributed.estimate_sharded` with
    ``merge="tree"`` per trial seed.
    """
    from ..distributed import estimate_sharded

    if len(unit.epsilons) != 1 or unit.group_seed is not None:
        # plan_grid never builds these; a hand-built unit must fail loud
        # rather than silently evaluating only the first epsilon.
        raise ParameterError(
            "sharded sweep units are exact-mode single-epsilon units; "
            f"got epsilons={unit.epsilons} group_seed={unit.group_seed}"
        )
    epsilon = unit.epsilons[0]
    results = [
        estimate_sharded(
            estimator,
            instance,
            epsilon,
            num_shards=unit.shards,
            seed=trial_seed,
            merge="tree",
        )
        for trial_seed in _unit_trial_seeds(unit)
    ]
    return _records_from_results(estimator.name, instance, epsilon, results)


def execute_unit(
    unit: SweepUnit, estimator: JoinEstimator, instance: JoinInstance
) -> List[TrialRecord]:
    """Run one unit; epsilon-major record order for multi-epsilon units."""
    if unit.shards:
        return _execute_unit_sharded(unit, estimator, instance)
    if unit.group_seed is not None:
        group = getattr(estimator, "estimate_trial_group", None)
        if group is not None:
            blocks = group(
                instance,
                list(unit.epsilons),
                list(unit.trial_seeds),
                group_seed=unit.group_seed,
            )
            records: List[TrialRecord] = []
            for epsilon, results in zip(unit.epsilons, blocks):
                records.extend(
                    _records_from_results(estimator.name, instance, epsilon, results)
                )
            return records
        # No grouped fast path: evaluate each epsilon with the same trial
        # seeds (common random numbers at seed level) — still one
        # deterministic unit, still worker-count invariant.
        records = []
        for epsilon in unit.epsilons:
            records.extend(
                run_seeded_trials(
                    estimator, instance, epsilon, unit.trial_seeds,
                    vectorize=unit.vectorize,
                )
            )
        return records
    if unit.seed is not None:
        return run_trials(
            estimator, instance, unit.epsilons[0], unit.trials, unit.seed,
            vectorize=unit.vectorize,
        )
    return run_seeded_trials(
        estimator, instance, unit.epsilons[0], unit.trial_seeds,
        vectorize=unit.vectorize,
    )


# ----------------------------------------------------------------------
# Shared-memory dataset transport
# ----------------------------------------------------------------------
def _share_array(arr: np.ndarray):
    """Copy ``arr`` into a fresh shared-memory block; returns (ref, handle).

    Empty arrays travel inline (zero-size segments are not allowed)."""
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    if arr.nbytes == 0:
        return {"inline": arr}, None
    shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[:] = arr
    return {"shm": shm.name, "shape": arr.shape, "dtype": str(arr.dtype)}, shm


def _attach_array(ref):
    """Rebuild an array from a :func:`_share_array` reference (read-only).

    Returns ``(array, segment_or_None)``; the caller owns the segment's
    lifetime (the array views its buffer)."""
    if "inline" in ref:
        return ref["inline"], None
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=ref["shm"], track=False)
    except TypeError:
        # Python < 3.13 has no track flag.  Under the fork start method
        # the resource tracker is shared with the parent, so the attach
        # re-registers an already-tracked name (a no-op) and the parent's
        # unlink de-registers it exactly once — no manual bookkeeping.
        shm = shared_memory.SharedMemory(name=ref["shm"])
    arr = np.ndarray(
        tuple(ref["shape"]), dtype=np.dtype(ref["dtype"]), buffer=shm.buf
    )
    arr.flags.writeable = False
    return arr, shm


def _instance_ref(instance: JoinInstance):
    """Serialisable descriptor of one dataset (arrays via shared memory)."""
    ref_a, shm_a = _share_array(instance.values_a)
    ref_b, shm_b = _share_array(instance.values_b)
    ref = {
        "name": instance.name,
        "domain_size": instance.domain_size,
        "values_a": ref_a,
        "values_b": ref_b,
    }
    return ref, [h for h in (shm_a, shm_b) if h is not None]


#: Per-worker-process cache: shared-memory instances are attached (and
#: their frequency vectors / ground truth computed) once per dataset per
#: worker, not once per unit.  Bounded — evicting an entry closes its
#: segments, so a long session sweeping many datasets cannot pin
#: unbounded shared memory in every worker.
_WORKER_INSTANCES: Dict[Tuple, Tuple[JoinInstance, List]] = {}
_WORKER_CACHE_MAX = 8


def _instance_from_ref(ref) -> JoinInstance:
    key = (
        ref["name"],
        ref["values_a"].get("shm"),
        ref["values_b"].get("shm"),
        ref["domain_size"],
    )
    cached = _WORKER_INSTANCES.get(key)
    if cached is not None and key[1] is not None and key[2] is not None:
        return cached[0]
    arr_a, seg_a = _attach_array(ref["values_a"])
    arr_b, seg_b = _attach_array(ref["values_b"])
    instance = JoinInstance(
        name=ref["name"],
        values_a=np.asarray(arr_a),
        values_b=np.asarray(arr_b),
        domain_size=ref["domain_size"],
    )
    _WORKER_INSTANCES[key] = (instance, [s for s in (seg_a, seg_b) if s is not None])
    while len(_WORKER_INSTANCES) > _WORKER_CACHE_MAX:
        oldest = next(iter(_WORKER_INSTANCES))
        _, segments = _WORKER_INSTANCES.pop(oldest)
        for segment in segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - cleanup best effort
                pass
    return instance


#: The backend name this worker process last selected (avoids re-running
#: the registry resolution on every unit).
_WORKER_BACKEND: Optional[str] = None


def _ensure_worker_backend(name: Optional[str]) -> None:
    """Re-resolve the compute backend inside a pool worker.

    Under ``fork`` the parent's resolved backend object is inherited, but
    under ``spawn`` the worker re-imports :mod:`repro.backend` and would
    silently auto-detect — dropping an explicit parent-side
    :func:`repro.backend.set_backend` choice.  The parent therefore ships
    the *name* of its active backend with every unit and the worker
    re-resolves it here, once.  A backend that exists in the parent but
    not in the worker (exotic heterogeneous deployments) degrades to the
    worker's default with a warning instead of poisoning the sweep.
    """
    global _WORKER_BACKEND
    from ..backend import (
        BackendUnavailableError,
        _clear_context_override,
        set_backend,
    )

    # A use_backend scope active in the parent when the pool forked is
    # inherited through the contextvar and would shadow set_backend here
    # for every unit this worker ever runs — drop it first.
    _clear_context_override()
    if name is None or name == _WORKER_BACKEND:
        return
    try:
        set_backend(name)
    except BackendUnavailableError as exc:  # pragma: no cover - heterogeneous
        import warnings

        warnings.warn(
            f"sweep worker could not select backend {name!r} ({exc}); "
            f"continuing on the worker's default backend",
            RuntimeWarning,
        )
    _WORKER_BACKEND = name


#: The fault-plan payload this worker last armed.  Payload-equality cache
#: (mirroring ``_WORKER_BACKEND``): re-arming an unchanged plan on every
#: task would reset its hit counters mid-sweep.
_WORKER_FAULTS = None


def _ensure_worker_faults(payload) -> None:
    """Arm (or disarm) the parent's fault plan inside a pool worker.

    Fault plans are process-wide state, so like the backend choice they
    must be re-established in every worker: the parent ships
    ``plan.to_dict()`` with each task and the worker arms it once.
    """
    global _WORKER_FAULTS
    if payload == _WORKER_FAULTS:
        return
    from ..reliability.faults import arm, disarm

    if payload is None:
        disarm()
    else:
        arm(FaultPlan.from_dict(payload))
    _WORKER_FAULTS = payload


def _as_policy(retries) -> Optional[RetryPolicy]:
    """Normalise a ``retries=`` argument (None / int / policy / payload)."""
    if retries is None or isinstance(retries, RetryPolicy):
        return retries
    if isinstance(retries, dict):
        return RetryPolicy(**retries)
    return RetryPolicy(int(retries))


def _as_plan(fault_plan) -> Optional[FaultPlan]:
    """Normalise a ``fault_plan=`` argument (None / plan / JSON file path)."""
    if fault_plan is None or isinstance(fault_plan, FaultPlan):
        return fault_plan
    return FaultPlan.load(fault_plan)


def _execute_remote(
    unit: SweepUnit,
    estimator: JoinEstimator,
    ref,
    backend=None,
    faults=None,
    retries=None,
    attempt: int = 0,
):
    """Worker entry point: re-pin the backend, attach the dataset, run.

    ``attempt`` is the parent-side resubmission count — threaded into the
    ``sweep.unit`` fault point so a crash/error spec with ``times=t``
    stops firing once the parent has resubmitted the task ``t`` times
    (the fault-absorption contract, across real process deaths).
    In-worker retries (``retries``) absorb faults at the inner points
    without a round trip to the parent.
    """
    _ensure_worker_backend(backend)
    _ensure_worker_faults(faults)
    fault_point(
        "sweep.unit",
        unit=unit.index,
        dataset=unit.dataset,
        method=unit.method,
        attempt=int(attempt),
        crashable=True,
    )
    instance = _instance_from_ref(ref)
    policy = _as_policy(retries)
    # The resubmission attempt scopes the whole task: inner fault points
    # (shard.collect, session.ingest) see it instead of per-worker hit
    # counters, which would re-fire when a resubmission lands on a fresh
    # worker.  An in-worker policy nests its own attempt scope inside.
    with attempt_scope(int(attempt)):
        if policy is None:
            return unit.index, execute_unit(unit, estimator, instance)
        records = policy.call(
            lambda: execute_unit(unit, estimator, instance),
            operation=f"sweep unit {unit.index} ({unit.dataset}/{unit.method})",
        )
    return unit.index, records


def _execute_remote_tagged(
    unit: SweepUnit,
    estimator: JoinEstimator,
    ref,
    backend=None,
    faults=None,
    retries=None,
    attempt: int = 0,
):
    """Whole-unit worker task, tagged for the mixed shard/unit scheduler."""
    index, records = _execute_remote(
        unit, estimator, ref, backend, faults, retries, attempt
    )
    return ("unit", index, records)


#: Per-worker cache of prepared shard runs: one plan (pairs draw +
#: population split) serves all K of a trial's shard tasks instead of
#: re-planning per shard.  Bounded; keys are plan-determined.
_WORKER_SHARD_RUNS: Dict[Tuple, Tuple[JoinInstance, object]] = {}
_WORKER_SHARD_RUNS_MAX = 4


def _estimator_config_key(estimator: JoinEstimator) -> Tuple:
    """A hashable snapshot of an estimator's configuration.

    Part of the shard-run cache key: two sweeps in one process may use
    the same method name with different options (k, m, pool size, ...),
    and a prepared run from the first must never serve the second.
    """
    try:
        attrs = vars(estimator)
    except TypeError:  # pragma: no cover - exotic estimator without __dict__
        attrs = {}
    return tuple(
        sorted((name, repr(value)) for name, value in attrs.items())
    )


def _prepared_shard_run(
    unit: SweepUnit, estimator: JoinEstimator, instance: JoinInstance, trial_seed: int
):
    from ..distributed import prepare_shard_run

    key = (
        unit.method,
        float(unit.epsilons[0]),
        int(trial_seed),
        unit.shards,
        _estimator_config_key(estimator),
    )
    entry = _WORKER_SHARD_RUNS.get(key)
    # The cached entry pins the *instance object* it was planned against:
    # a later sweep over a same-named dataset with different content (new
    # scale/size, fresh shared-memory segment) is a different object and
    # misses, instead of silently reusing a stale population split.
    if entry is not None and entry[0] is instance:
        return entry[1]
    run = prepare_shard_run(
        estimator,
        instance,
        unit.epsilons[0],
        num_shards=unit.shards,
        seed=trial_seed,
    )
    _WORKER_SHARD_RUNS[key] = (instance, run)
    while len(_WORKER_SHARD_RUNS) > _WORKER_SHARD_RUNS_MAX:
        _WORKER_SHARD_RUNS.pop(next(iter(_WORKER_SHARD_RUNS)))
    return run


def _execute_shard_remote(
    unit: SweepUnit,
    estimator: JoinEstimator,
    ref,
    backend,
    trial_seed: int,
    trial_pos: int,
    shard_index: int,
    faults=None,
    retries=None,
    attempt: int = 0,
):
    """Shard-granular worker task: emit one trial's shard partial.

    The run is rebuilt deterministically from plan data (trial seed,
    shard count), so any worker produces the identical partial for
    ``(unit, trial, shard)`` — the parent tree-merges them in shard
    order and finalises, replacing whole-trial shipping.  ``attempt``
    is the parent-side resubmission count (see :func:`_execute_remote`);
    ``retries`` additionally retries the collect in-worker, with the
    shard's RNG snapshot restored per attempt.
    """
    _ensure_worker_backend(backend)
    _ensure_worker_faults(faults)
    fault_point(
        "sweep.shard",
        unit=unit.index,
        trial=trial_pos,
        shard=shard_index,
        attempt=int(attempt),
        crashable=True,
    )
    instance = _instance_from_ref(ref)
    with attempt_scope(int(attempt)):  # see _execute_remote
        run = _prepared_shard_run(unit, estimator, instance, trial_seed)
        partial = run.collect(shard_index, retries=_as_policy(retries))
    return ("shard", unit.index, trial_pos, shard_index, partial)


#: The parent-side process pool, created lazily and reused across sweeps
#: (a figure like fig9 calls ``run_trials(workers=N)`` once per grid
#: point; paying fork startup per call would swamp small units).
_EXECUTOR = None
_EXECUTOR_WORKERS = 0


def _get_executor(workers: int):
    global _EXECUTOR, _EXECUTOR_WORKERS
    from concurrent.futures import ProcessPoolExecutor

    if _EXECUTOR is None or _EXECUTOR_WORKERS < workers:
        _shutdown_executor()
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers)
        _EXECUTOR_WORKERS = workers
        import atexit

        atexit.register(_shutdown_executor)
    return _EXECUTOR


def _shutdown_executor() -> None:
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_WORKERS = 0


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _execute_unit_guarded(
    plan: SweepPlan, unit: SweepUnit, policy: Optional[RetryPolicy]
) -> List[TrialRecord]:
    """In-process unit execution behind the ``sweep.unit`` fault point."""
    estimator = plan.estimators[unit.method]
    instance = plan.instances[unit.dataset]

    def attempt() -> List[TrialRecord]:
        fault_point(
            "sweep.unit", unit=unit.index, dataset=unit.dataset, method=unit.method
        )
        return execute_unit(unit, estimator, instance)

    if policy is None:
        return attempt()
    return policy.call(
        attempt, operation=f"sweep unit {unit.index} ({unit.dataset}/{unit.method})"
    )


def iter_sweep(
    plan: SweepPlan,
    *,
    workers: int = 1,
    retries: Union[None, int, RetryPolicy] = None,
    fault_plan=None,
) -> Iterator[Tuple[SweepUnit, List[TrialRecord]]]:
    """Execute a plan, yielding ``(unit, records)`` in plan order.

    ``workers=1`` runs in-process.  ``workers > 1`` fans the work out on
    a process pool; each dataset's value arrays are written once to
    shared memory and attached by the workers, and completed units are
    buffered so the stream still emerges in plan order.  Units planned
    with ``shards=K`` are split to *shard granularity*: workers emit one
    :class:`~repro.distributed.PartialAggregate` per (trial, shard) and
    the parent tree-merges each trial's K partials and finalises —
    replacing whole-trial shipping.  Output is bit-identical across
    worker counts either way — every unit's (and shard's) randomness is
    fixed by the plan, not by scheduling.

    ``retries`` (an attempt count or :class:`~repro.reliability.RetryPolicy`)
    bounds how often a failed task is re-run; ``fault_plan`` (a
    :class:`~repro.reliability.FaultPlan` or a JSON file path) arms a
    deterministic fault schedule for the whole sweep, in-process and in
    every worker.  A worker death (``BrokenProcessPool``) restarts the
    pool and resubmits every in-flight task spec against the retry
    budget; tasks still failing when it runs out raise
    :class:`~repro.errors.SweepWorkerLostError` naming the lost grid
    cells.  Because tasks are pure functions of plan data, any absorbed
    failure leaves the yielded records bit-identical.
    """
    workers = require_positive_int("workers", workers)
    policy = _as_policy(retries)
    faults = _as_plan(fault_plan)
    if workers == 1 or (
        len(plan.units) <= 1 and not any(u.shards for u in plan.units)
    ):
        with injected(faults):
            for unit in plan.units:
                yield unit, _execute_unit_guarded(plan, unit, policy)
        return
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    from ..distributed import merge_tree, pool_shardable

    refs = {}
    handles = []
    try:
        for name, instance in plan.instances.items():
            refs[name], shms = _instance_ref(instance)
            handles.extend(shms)
        results: Dict[int, List[TrialRecord]] = {}
        shard_state: Dict[int, dict] = {}  # unit index -> in-flight shards
        specs: List[Tuple] = []
        for unit in plan.units:
            estimator = plan.estimators[unit.method]
            if unit.shards and pool_shardable(estimator):
                trial_seeds = _unit_trial_seeds(unit)
                shard_state[unit.index] = {
                    "trial_seeds": trial_seeds,
                    "parts": {t: {} for t in range(len(trial_seeds))},
                    "trial_results": {},
                }
                for t, trial_seed in enumerate(trial_seeds):
                    for s in range(unit.shards):
                        specs.append(("shard", unit, trial_seed, t, s))
            else:
                # Multi-round protocols (LDPJoinSketch+) and
                # estimation-dominated finalisers (the oracle baselines)
                # run whole-trial: one task per unit, with execute_unit
                # honouring unit.shards in-process — identical records,
                # but the heavy estimation stays in the worker.
                specs.append(("unit", unit, None, None, None))
        next_index = 0
        pool = _get_executor(min(workers, len(specs)))
        # Ship the parent's active backend name so workers re-resolve it
        # after fork/spawn (see _ensure_worker_backend).
        from ..backend import get_backend

        backend_name = get_backend().name
        fault_payload = faults.to_dict() if faults is not None else None
        retry_payload = policy.to_dict() if policy is not None else None
        #: Parent-side resubmission budget per task spec.  The same
        #: max_attempts bounds both tiers: in-worker retries absorb
        #: raised faults, resubmission absorbs whole worker deaths.
        max_task_attempts = policy.max_attempts if policy is not None else 1
        spec_attempts = [0] * len(specs)
        future_specs: Dict = {}

        def _cell(spec) -> str:
            kind, unit, _trial_seed, t, s = spec
            label = f"{unit.dataset}/{unit.method}/eps={unit.epsilons[0]:g}"
            if kind == "shard":
                label += f"/trial{t}/shard{s}"
            return label

        def _submit(spec_i: int):
            nonlocal pool
            kind, unit, trial_seed, t, s = specs[spec_i]
            estimator = plan.estimators[unit.method]
            ref = refs[unit.dataset]
            if kind == "unit":
                task = (
                    _execute_remote_tagged,
                    unit,
                    estimator,
                    ref,
                    backend_name,
                    fault_payload,
                    retry_payload,
                    spec_attempts[spec_i],
                )
            else:
                task = (
                    _execute_shard_remote,
                    unit,
                    estimator,
                    ref,
                    backend_name,
                    trial_seed,
                    t,
                    s,
                    fault_payload,
                    retry_payload,
                    spec_attempts[spec_i],
                )
            try:
                future = pool.submit(*task)
            except BrokenProcessPool:
                # A fast worker death can break the pool while submits
                # are still in flight, making submit itself raise —
                # restart and re-place this spec on the fresh pool.  No
                # attempt is burned: the spec never ran, and the crashed
                # spec that broke the pool is charged when its own
                # future surfaces the breakage.  In-flight futures of
                # the dead pool fail the same way and go through the
                # ordinary resubmission path.
                _shutdown_executor()
                pool = _get_executor(min(workers, len(specs)))
                future = pool.submit(*task)
            future_specs[future] = spec_i
            return future

        def _finalize_trial(unit: SweepUnit, state: dict, t: int) -> None:
            estimator = plan.estimators[unit.method]
            instance = plan.instances[unit.dataset]
            run = _prepared_shard_run(
                unit, estimator, instance, state["trial_seeds"][t]
            )
            parts = state["parts"].pop(t)
            merged = merge_tree([parts[s] for s in range(unit.shards)], copy=False)
            state["trial_results"][t] = run.finalize(merged)
            if len(state["trial_results"]) == len(state["trial_seeds"]):
                ordered = [
                    state["trial_results"][i]
                    for i in range(len(state["trial_seeds"]))
                ]
                results[unit.index] = _records_from_results(
                    estimator.name, instance, unit.epsilons[0], ordered
                )

        try:
            pending = {_submit(spec_i) for spec_i in range(len(specs))}
            while next_index < len(plan.units):
                while next_index < len(plan.units) and next_index in results:
                    yield plan.units[next_index], results.pop(next_index)
                    next_index += 1
                if next_index >= len(plan.units):
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                broken = False
                resubmit: List[int] = []
                last_error: Optional[BaseException] = None
                for future in done:
                    spec_i = future_specs.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool as error:
                        broken = True
                        resubmit.append(spec_i)
                        last_error = error
                        continue
                    except RetryExhaustedError as error:
                        # The worker already burned the whole in-worker
                        # budget on this task; resubmitting replays the
                        # same deterministic schedule — terminal.
                        raise SweepWorkerLostError(
                            f"sweep task failed past its in-worker retry "
                            f"budget: {error}",
                            cells=[_cell(specs[spec_i])],
                        ) from error
                    except DEFAULT_RETRYABLE as error:
                        resubmit.append(spec_i)
                        last_error = error
                        continue
                    if payload[0] == "unit":
                        _, index, records = payload
                        results[index] = records
                    else:
                        _, index, t, s, partial = payload
                        unit = plan.units[index]
                        state = shard_state[index]
                        state["parts"][t][s] = partial
                        if len(state["parts"][t]) == unit.shards:
                            _finalize_trial(unit, state, t)
                if broken:
                    # A worker death breaks the whole pool: every other
                    # in-flight future fails with it.  Reclaim their
                    # specs, restart the pool, resubmit everything.
                    for future in pending:
                        resubmit.append(future_specs.pop(future))
                    pending = set()
                    _shutdown_executor()
                    pool = _get_executor(min(workers, max(1, len(resubmit))))
                if resubmit:
                    exhausted = sorted(
                        spec_i
                        for spec_i in resubmit
                        if spec_attempts[spec_i] + 1 >= max_task_attempts
                    )
                    if exhausted:
                        raise SweepWorkerLostError(
                            f"{len(exhausted)} sweep task(s) failed past the "
                            f"retry budget (attempts={max_task_attempts}; "
                            f"pass retries= to raise it)",
                            cells=[_cell(specs[spec_i]) for spec_i in exhausted],
                        ) from last_error
                    for spec_i in resubmit:
                        spec_attempts[spec_i] += 1
                        pending.add(_submit(spec_i))
        except Exception:
            # A broken pool (killed worker, pickling failure) must not
            # poison later sweeps — drop the cached executor so the next
            # call starts a fresh one.
            _shutdown_executor()
            raise
    finally:
        for shm in handles:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - cleanup best effort
                pass


def run_sweep(
    plan: SweepPlan,
    *,
    workers: int = 1,
    retries: Union[None, int, RetryPolicy] = None,
    fault_plan=None,
) -> List[List[TrialRecord]]:
    """Execute a plan; one record list per unit, in plan order."""
    return [
        records
        for _, records in iter_sweep(
            plan, workers=workers, retries=retries, fault_plan=fault_plan
        )
    ]


def run_seeded_trials_parallel(
    method: JoinEstimator,
    instance: JoinInstance,
    epsilon: float,
    trial_seeds: Sequence[int],
    *,
    workers: int,
    vectorize: bool = True,
) -> List[TrialRecord]:
    """Split one grid point's trials into contiguous seed blocks.

    The worker-side path of ``run_trials(..., workers=N)``: each block is
    one explicit-seeds unit, so the concatenated records carry exactly
    the seeds (hence estimates) the serial loop would produce.
    """
    trial_seeds = list(trial_seeds)
    workers = min(workers, len(trial_seeds)) or 1
    bounds = np.linspace(0, len(trial_seeds), workers + 1).astype(int)
    plan = SweepPlan(instances={"point": instance}, estimators={method.name: method})
    for i in range(workers):
        block = tuple(trial_seeds[bounds[i] : bounds[i + 1]])
        if not block:
            continue
        plan.units.append(
            SweepUnit(
                index=len(plan.units),
                dataset="point",
                method=method.name,
                epsilons=(float(epsilon),),
                trials=len(block),
                trial_seeds=block,
                vectorize=vectorize,
            )
        )
    records: List[TrialRecord] = []
    for block_records in run_sweep(plan, workers=workers):
        records.extend(block_records)
    return records


def sweep_table(
    datasets: Sequence[str],
    methods: Union[Dict[str, JoinEstimator], Iterable[Union[str, JoinEstimator]]],
    epsilons: Sequence[float],
    trials: int,
    *,
    scale: float = 0.002,
    size: Optional[int] = None,
    seed: RandomState = None,
    workers: int = 1,
    trial_axis: str = "exact",
    shards: Optional[int] = None,
    retries: Union[None, int, RetryPolicy] = None,
    fault_plan=None,
    title: str = "Sweep: (dataset x method x epsilon) accuracy grid",
    **method_options,
) -> ResultTable:
    """Plan, execute and summarise an ad-hoc grid (the CLI ``sweep`` cmd)."""
    from .harness import summarize

    methods = _resolve_methods(methods, **method_options)
    plan = plan_grid(
        datasets,
        methods,
        epsilons,
        trials,
        scale=scale,
        size=size,
        seed=seed,
        trial_axis=trial_axis,
        shards=shards,
    )
    table = ResultTable(
        title,
        ["dataset", "method", "epsilon", "truth", "mean_estimate", "ae", "re"],
    )
    for unit, records in iter_sweep(
        plan, workers=workers, retries=retries, fault_plan=fault_plan
    ):
        for epsilon in unit.epsilons:
            stats = summarize([r for r in records if r.epsilon == epsilon])
            table.add_row(
                unit.dataset,
                unit.method,
                float(epsilon),
                stats["truth"],
                stats["mean_estimate"],
                stats["ae"],
                stats["re"],
            )
    sharding = f", shards={shards}" if shards else ""
    table.add_note(
        f"trials={trials}, workers={workers}, trial_axis={trial_axis}{sharding}; "
        f"results are bit-identical for every worker count"
    )
    return table


def window_sweep_table(
    datasets: Sequence[str],
    windows: Sequence[int],
    *,
    epochs: int = 8,
    epsilon: float = 4.0,
    k: int = 18,
    m: int = 1024,
    trials: int = 3,
    scale: float = 0.002,
    size: Optional[int] = None,
    seed: RandomState = None,
    decay: Optional[Tuple[int, int]] = None,
    title: str = "Window sweep: (dataset x window) sliding-window accuracy",
) -> ResultTable:
    """A (dataset × window) grid over temporal sliding-window estimates.

    Each dataset's two streams are split into ``epochs`` contiguous
    epoch slices and ingested epoch by epoch into a
    :class:`~repro.temporal.TemporalSession`; every window ``W`` on the
    axis is then answered by tree-merging the newest ``W`` closed
    epochs.  The ground truth per window is the *exact* join size of the
    same slice concatenation, so the reported errors isolate sketch
    noise from windowing.  ``decay=(num, den)`` adds the exponentially
    decayed estimate of the full window as an extra column.

    Deterministic for a fixed master ``seed``: instance seeds and
    per-trial session seeds derive from it in plan order, exactly like
    :func:`sweep_table`.
    """
    from ..core.params import SketchParams
    from ..temporal import TemporalSession

    epochs = require_positive_int("epochs", epochs)
    trials = require_positive_int("trials", trials)
    windows = [int(w) for w in windows]
    if not windows:
        raise ParameterError("need at least one window")
    for window in windows:
        if not 1 <= window <= epochs:
            raise ParameterError(
                f"windows must lie in [1, {epochs}] (the epoch count), "
                f"got {window}"
            )
    params = SketchParams(int(k), int(m), float(epsilon))
    columns = ["dataset", "window", "truth", "mean_estimate", "ae", "re"]
    if decay is not None:
        columns.append("mean_decayed")
    table = ResultTable(title, columns)
    rng = ensure_rng(seed)
    for dataset in datasets:
        instance_seed = derive_seed(rng)
        trial_seeds = [derive_seed(rng) for _ in range(trials)]
        instance = make_join_instance(
            dataset, scale=scale, size=size, seed=instance_seed
        )
        slices_a = np.array_split(instance.values_a, epochs)
        slices_b = np.array_split(instance.values_b, epochs)
        estimates: Dict[int, List[float]] = {w: [] for w in windows}
        decayed: Dict[int, List[float]] = {w: [] for w in windows}
        for trial_seed in trial_seeds:
            session = TemporalSession(
                params, window_epochs=epochs, seed=trial_seed
            )
            for slice_a, slice_b in zip(slices_a, slices_b):
                session.collect("A", slice_a)
                session.collect("B", slice_b)
                session.roll()
            for window in windows:
                result = session.window_session(
                    window, include_open=False
                ).estimate("A", "B")
                estimates[window].append(float(result.estimate))
                if decay is not None:
                    decayed[window].append(
                        session.decayed_estimate(
                            "A",
                            "B",
                            decay=decay,
                            window=window,
                            include_open=False,
                        )
                    )
        for window in windows:
            values_a = np.concatenate(slices_a[epochs - window :])
            values_b = np.concatenate(slices_b[epochs - window :])
            counts_a = np.bincount(values_a, minlength=instance.domain_size)
            counts_b = np.bincount(values_b, minlength=instance.domain_size)
            truth = float(np.dot(counts_a, counts_b))
            mean_estimate = float(np.mean(estimates[window]))
            ae = abs(mean_estimate - truth)
            row = [
                dataset,
                window,
                truth,
                mean_estimate,
                ae,
                ae / truth if truth else float("inf"),
            ]
            if decay is not None:
                row.append(float(np.mean(decayed[window])))
            table.add_row(*row)
    note = f"epochs={epochs}, epsilon={epsilon:g}, trials={trials}"
    if decay is not None:
        note += f", decay={decay[0]}/{decay[1]}"
    table.add_note(
        f"{note}; window W tree-merges the newest W epoch partials — "
        f"byte-identical to a session that ingested only those epochs"
    )
    return table
