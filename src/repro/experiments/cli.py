"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-experiments list
    repro-experiments estimators
    repro-experiments run fig5 --scale 0.002 --trials 3 --seed 7
    repro-experiments run all --out results/ --workers 4
    repro-experiments sweep --datasets zipf-1.1 movielens \\
        --methods ldp-join-sketch hcms --epsilons 1 4 10 \\
        --trials 5 --workers 4
    repro-experiments lint --list-rules

``run`` prints each regenerated table and, with ``--out``, writes one CSV
per experiment into the output directory; ``--workers N`` fans the
repeated-trial grids out over N worker processes (results are
bit-identical to the serial run).  ``sweep`` executes an ad-hoc
(dataset × method × epsilon × trial) grid through the sweep engine;
``--trial-axis grouped`` switches to the shared-pass fast mode (see
:mod:`repro.experiments.sweep`).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from pathlib import Path
from typing import List, Optional

from .figures import ALL_EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the LDPJoinSketch paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    sub.add_parser(
        "estimators", help="list the registered join-size estimators (repro.api)"
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*ALL_EXPERIMENTS, "all"])
    run.add_argument("--scale", type=float, default=0.002, help="fraction of paper stream sizes")
    run.add_argument("--trials", type=int, default=None, help="trials per configuration")
    run.add_argument("--seed", type=int, default=2024, help="master random seed")
    run.add_argument("--out", type=Path, default=None, help="directory for CSV outputs")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for repeated-trial grids (bit-identical to serial)",
    )

    sweep = sub.add_parser(
        "sweep", help="run an ad-hoc (dataset x method x epsilon x trial) grid"
    )
    sweep.add_argument("--datasets", nargs="+", default=["zipf-1.1"], help="dataset registry keys")
    sweep.add_argument(
        "--methods", nargs="+", default=["ldp-join-sketch"], help="estimator registry names"
    )
    sweep.add_argument("--epsilons", nargs="+", type=float, default=[4.0])
    sweep.add_argument("--trials", type=int, default=5)
    sweep.add_argument("--scale", type=float, default=0.002, help="fraction of paper stream sizes")
    sweep.add_argument("--size", type=int, default=None, help="explicit per-stream length override")
    sweep.add_argument("--seed", type=int, default=2024)
    sweep.add_argument("--workers", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--trial-axis",
        choices=("exact", "grouped"),
        default="exact",
        help="'grouped' shares one hash/sample pass per (dataset, method) "
        "block (faster; common random numbers across epsilons/trials)",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run every trial as K shard aggregators + a merge tree "
        "(workers then ship partials; bit-identical for every K and "
        "worker count pair with the same seed at K=1)",
    )
    sweep.add_argument("--k", type=int, default=18, help="sketch depth for sketch methods")
    sweep.add_argument("--m", type=int, default=1024, help="sketch width for sketch methods")
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        help="attempt budget per task (absorbs injected faults, worker "
        "deaths and broken pools without changing a single result bit)",
    )
    sweep.add_argument(
        "--fault-plan",
        type=Path,
        default=None,
        help="arm a deterministic fault schedule (FaultPlan JSON, see "
        "repro.reliability) for the whole sweep",
    )
    sweep.add_argument("--out", type=Path, default=None, help="directory for the sweep CSV")

    windows = sub.add_parser(
        "windows",
        help="run a (dataset x window) sliding-window accuracy grid "
        "(repro.temporal)",
    )
    windows.add_argument(
        "--datasets", nargs="+", default=["zipf-1.1"], help="dataset registry keys"
    )
    windows.add_argument(
        "--windows",
        nargs="+",
        type=int,
        default=[1, 2, 4, 8],
        help="sliding-window sizes, in epochs",
    )
    windows.add_argument(
        "--epochs", type=int, default=8, help="epoch slices per dataset stream"
    )
    windows.add_argument("--epsilon", type=float, default=4.0)
    windows.add_argument("--trials", type=int, default=3)
    windows.add_argument("--scale", type=float, default=0.002, help="fraction of paper stream sizes")
    windows.add_argument("--size", type=int, default=None, help="explicit per-stream length override")
    windows.add_argument("--seed", type=int, default=2024)
    windows.add_argument("--k", type=int, default=18, help="sketch depth")
    windows.add_argument("--m", type=int, default=1024, help="sketch width")
    windows.add_argument(
        "--decay",
        default=None,
        metavar="NUM/DEN",
        help="also report the exponentially decayed estimate with this "
        "exact rational per-epoch factor (e.g. 1/2)",
    )
    windows.add_argument(
        "--out", type=Path, default=None, help="directory for the windows CSV"
    )

    shard = sub.add_parser(
        "shard",
        help="sharded aggregation tools (repro.distributed)",
        description="Run one estimate through K shard aggregators + a merge "
        "tree, or merge previously written partial payloads.",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    shard_run = shard_sub.add_parser(
        "run", help="sharded estimate with a merge-invariance check"
    )
    shard_run.add_argument("--dataset", default="zipf-1.1", help="dataset registry key")
    shard_run.add_argument("--method", default="ldp-join-sketch", help="estimator registry name")
    shard_run.add_argument("--epsilon", type=float, default=4.0)
    shard_run.add_argument("--shards", type=int, default=8, help="shard count K")
    shard_run.add_argument(
        "--strategy", choices=("hash", "range"), default="hash", help="partitioning strategy"
    )
    shard_run.add_argument("--seed", type=int, default=2024)
    shard_run.add_argument("--scale", type=float, default=0.002)
    shard_run.add_argument("--size", type=int, default=None, help="explicit per-stream length")
    shard_run.add_argument("--k", type=int, default=18, help="sketch depth for sketch methods")
    shard_run.add_argument("--m", type=int, default=1024, help="sketch width for sketch methods")
    shard_run.add_argument(
        "--partials-dir",
        type=Path,
        default=None,
        help="also write every shard's PartialAggregate payload (JSON) here",
    )
    shard_run.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retry budget per shard collect (repro.reliability.RetryPolicy)",
    )
    shard_run.add_argument(
        "--fault-plan",
        type=Path,
        default=None,
        help="arm a deterministic fault schedule (FaultPlan JSON) for the run",
    )
    shard_run.add_argument(
        "--degraded",
        action="store_true",
        help="merge the K-f surviving shards when a shard is lost for "
        "good, rescaling by client coverage (recorded in the result)",
    )
    shard_merge = shard_sub.add_parser(
        "merge", help="tree-merge partial payload files written by 'shard run'"
    )
    shard_merge.add_argument("partials", nargs="+", type=Path, help="partial JSON files")
    shard_merge.add_argument(
        "--out", type=Path, default=None, help="write the merged partial payload here"
    )

    serve = sub.add_parser(
        "serve",
        help="run the crash-safe online aggregation service (repro.service)",
        description="Start the asyncio HTTP collector: durable WAL ingest, "
        "bounded backpressure, checkpointed shards, published snapshots; "
        "arguments are forwarded to `python -m repro.service` verbatim.",
    )
    serve.add_argument(
        "serve_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.service (--data-dir, --port, "
        "--shards, --fault-plan, ...)",
    )

    failover = sub.add_parser(
        "failover",
        help="operator actions against a replicated service group",
        description="Inspect and drive failover of a primary/standby "
        "group: 'status' shows every endpoint's role, fencing epoch, WAL "
        "sequence and snapshot digest (the digest-parity check of the "
        "runbook); 'promote' bumps the fencing epoch on one endpoint, "
        "making it primary and fencing the old one.",
    )
    failover.add_argument(
        "failover_command", choices=("status", "promote"), help="action"
    )
    failover.add_argument(
        "--endpoint",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="a group member (repeatable, order = promote indexing)",
    )
    failover.add_argument(
        "--target",
        type=int,
        default=0,
        help="index (into --endpoint order) of the node to promote",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repro.analysis invariant linter (RPR101-RPR105)",
        description="Static checks for the repo's determinism, merge-safety, "
        "backend-ABI and privacy-budget invariants; arguments are forwarded "
        "to `python -m repro.analysis` verbatim.",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro-lint (paths, --format, "
        "--baseline, --list-rules, ...)",
    )
    return parser


def _forwarded_args(argv: Optional[List[str]], command: str) -> Optional[List[str]]:
    """The arguments to forward when ``argv`` invokes ``command``.

    Forwarding happens *before* argparse sees the command line:
    ``nargs=REMAINDER`` cannot capture a leading option (argparse tries
    to resolve ``lint --list-rules`` against the outer parser), and the
    forwarded tool owns its own --help.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == command:
        return argv[1:]
    return None


def _run_one(name: str, args: argparse.Namespace) -> None:
    func = ALL_EXPERIMENTS[name]
    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.trials is not None and name not in ("table2", "fig7"):
        kwargs["trials"] = args.trials
    if name in ("table2", "fig7"):
        kwargs.pop("trials", None)
    if args.workers != 1 and "workers" in inspect.signature(func).parameters:
        kwargs["workers"] = args.workers
    start = time.perf_counter()
    table = func(**kwargs)
    elapsed = time.perf_counter() - start
    print(table.to_text())
    print(f"[{name} regenerated in {elapsed:.1f}s]")
    print()
    if args.out is not None:
        path = table.to_csv(Path(args.out) / f"{name}.csv")
        print(f"[wrote {path}]")


def _run_shard(args: argparse.Namespace) -> int:
    """The ``shard`` subcommand: sharded runs and partial merging."""
    import json

    from ..distributed import PartialAggregate, merge_tree

    if args.shard_command == "merge":
        partials = [
            PartialAggregate.from_dict(json.loads(path.read_text()))
            for path in args.partials
        ]
        merged = merge_tree(partials)
        reports = merged.counters.get("num_reports", None)
        if reports is None:
            reports = sum(
                value
                for key, value in merged.counters.items()
                if key.endswith("num_reports")
            )
        print(
            f"[shard] merged {len(partials)} partial(s) of method "
            f"{merged.method!r}: arrays={sorted(merged.arrays)}, "
            f"num_reports={reports:.0f}"
        )
        if args.out is not None:
            args.out.write_text(json.dumps(merged.to_dict()))
            print(f"[wrote {args.out}]")
        return 0

    from ..api import get_estimator
    from ..data import make_join_instance
    from ..distributed import estimate_sharded, merge_sequential, prepare_shard_run

    try:
        estimator = get_estimator(args.method, k=args.k, m=args.m)
    except TypeError as exc:
        if "unexpected keyword argument" not in str(exc):
            raise
        estimator = get_estimator(args.method)
    instance = make_join_instance(
        args.dataset, scale=args.scale, size=args.size, seed=args.seed
    )
    shard_kwargs = dict(
        num_shards=args.shards, seed=args.seed, strategy=args.strategy
    )
    reliability_kwargs = {}
    if args.retries is not None:
        reliability_kwargs["retries"] = args.retries
    if args.fault_plan is not None:
        reliability_kwargs["fault_plan"] = args.fault_plan
    if args.degraded:
        reliability_kwargs["degraded"] = True
    if reliability_kwargs:
        # Retry/fault/degraded runs go through estimate_sharded, which
        # owns arming the plan and the per-shard retry wrapping.
        run = None
    else:
        run = prepare_shard_run(estimator, instance, args.epsilon, **shard_kwargs)
    start = time.perf_counter()
    if run is not None:
        # One collection serves everything: the partials are
        # plan-deterministic, so both reduction topologies (and the
        # optional payload dump) reuse them.
        partials = run.collect_all()
        tree = run.finalize(merge_tree(partials))
        elapsed = time.perf_counter() - start
        single = run.finalize(merge_sequential(partials))
    else:
        # Multi-round protocols (LDPJoinSketch+) own their rounds, and
        # retry/fault/degraded runs own their plan arming — each
        # topology is a full run.
        tree = estimate_sharded(
            estimator, instance, args.epsilon, merge="tree",
            **shard_kwargs, **reliability_kwargs,
        )
        elapsed = time.perf_counter() - start
        single = estimate_sharded(
            estimator, instance, args.epsilon, merge="sequential",
            **shard_kwargs, **reliability_kwargs,
        )
    identical = tree.estimate == single.estimate
    truth = instance.true_join_size
    print(
        f"[shard] {estimator.name} on {instance.name}: K={args.shards} "
        f"({args.strategy}), estimate={tree.estimate:,.1f}, truth={truth:,.0f}"
    )
    print(
        f"[shard] tree-merged == single-aggregator: {identical} "
        f"({elapsed:.2f}s sharded run)"
    )
    degraded = tree.extras.get("degraded") if hasattr(tree, "extras") else None
    if degraded:
        coverage = degraded["coverage"]
        print(
            f"[shard] degraded: lost shard(s) {degraded['shards_lost']}, "
            f"coverage A={coverage['A']:.3f} B={coverage['B']:.3f}, "
            f"rescale x{degraded['rescale']:.3f}"
        )
    if args.partials_dir is not None:
        if run is None:
            print(
                f"[shard] partials stay internal to this run mode "
                f"(multi-round protocol, or --retries/--fault-plan/"
                f"--degraded); nothing written"
            )
        else:
            args.partials_dir.mkdir(parents=True, exist_ok=True)
            for s, partial in enumerate(partials):
                path = args.partials_dir / f"partial-{s:03d}.json"
                path.write_text(json.dumps(partial.to_dict()))
            print(f"[wrote {args.shards} partials to {args.partials_dir}]")
    return 0 if identical else 1


def _run_failover(args: argparse.Namespace) -> int:
    """The ``failover`` subcommand: group status and promotion."""
    import json

    from ..errors import ReproError
    from ..service.client import ResilientClient

    client = ResilientClient(args.endpoint, client_id="repro-failover")
    if args.failover_command == "promote":
        info = client.promote(args.target)
        print(json.dumps(info, sort_keys=True))
        return 0
    exit_code = 0
    for index, endpoint in enumerate(client._endpoints):
        try:
            status, body = client._request(endpoint, "GET", "/v1/status")
        except (ConnectionError, ReproError) as error:
            print(f"[{index}] {endpoint.name}: unreachable ({error})")
            exit_code = 1
            continue
        snapshot = body.get("snapshot") or {}
        print(
            f"[{index}] {endpoint.name}: role={body.get('role')} "
            f"epoch={body.get('fencing_epoch')} "
            f"wal_sequence={body.get('wal_sequence')} "
            f"last_checkpoint={body.get('last_checkpoint_sequence')} "
            f"digest={snapshot.get('digest', '-')}"
        )
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    lint_args = _forwarded_args(argv, "lint")
    if lint_args is not None:
        from ..analysis import main as lint_main

        return lint_main(lint_args)
    serve_args = _forwarded_args(argv, "serve")
    if serve_args is not None:
        from ..service.__main__ import main as serve_main

        return serve_main(serve_args)
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            for name in ALL_EXPERIMENTS:
                doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
                print(f"{name:8s} {doc}")
            return 0
        if args.command == "estimators":
            from ..api import available_estimators, get_estimator

            for name in available_estimators():
                estimator = get_estimator(name)
                tag = "LDP" if estimator.private else "non-private"
                print(f"{name:22s} {estimator.name:16s} [{tag}]")
            return 0
        if args.command == "shard":
            return _run_shard(args)
        if args.command == "failover":
            return _run_failover(args)
        if args.command == "sweep":
            from .sweep import sweep_table

            start = time.perf_counter()
            table = sweep_table(
                args.datasets,
                args.methods,
                args.epsilons,
                args.trials,
                scale=args.scale,
                size=args.size,
                seed=args.seed,
                workers=args.workers,
                trial_axis=args.trial_axis,
                shards=args.shards,
                k=args.k,
                m=args.m,
            )
            elapsed = time.perf_counter() - start
            print(table.to_text())
            print(f"[sweep completed in {elapsed:.1f}s]")
            if args.out is not None:
                path = table.to_csv(Path(args.out) / "sweep.csv")
                print(f"[wrote {path}]")
            return 0
        if args.command == "windows":
            from .sweep import window_sweep_table

            decay = None
            if args.decay is not None:
                num, sep, den = str(args.decay).partition("/")
                try:
                    decay = (int(num), int(den))
                except ValueError:
                    decay = None
                if not sep or decay is None:
                    raise SystemExit(f"--decay must be NUM/DEN, got {args.decay!r}")
            start = time.perf_counter()
            table = window_sweep_table(
                args.datasets,
                args.windows,
                epochs=args.epochs,
                epsilon=args.epsilon,
                k=args.k,
                m=args.m,
                trials=args.trials,
                scale=args.scale,
                size=args.size,
                seed=args.seed,
                decay=decay,
            )
            elapsed = time.perf_counter() - start
            print(table.to_text())
            print(f"[windows completed in {elapsed:.1f}s]")
            if args.out is not None:
                path = table.to_csv(Path(args.out) / "windows.csv")
                print(f"[wrote {path}]")
            return 0
        names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            _run_one(name, args)
    except BrokenPipeError:  # output piped into a pager/head that closed
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
