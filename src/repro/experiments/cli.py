"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-experiments list
    repro-experiments estimators
    repro-experiments run fig5 --scale 0.002 --trials 3 --seed 7
    repro-experiments run all --out results/ --workers 4
    repro-experiments sweep --datasets zipf-1.1 movielens \\
        --methods ldp-join-sketch hcms --epsilons 1 4 10 \\
        --trials 5 --workers 4

``run`` prints each regenerated table and, with ``--out``, writes one CSV
per experiment into the output directory; ``--workers N`` fans the
repeated-trial grids out over N worker processes (results are
bit-identical to the serial run).  ``sweep`` executes an ad-hoc
(dataset × method × epsilon × trial) grid through the sweep engine;
``--trial-axis grouped`` switches to the shared-pass fast mode (see
:mod:`repro.experiments.sweep`).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from pathlib import Path
from typing import List, Optional

from .figures import ALL_EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the LDPJoinSketch paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    sub.add_parser(
        "estimators", help="list the registered join-size estimators (repro.api)"
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*ALL_EXPERIMENTS, "all"])
    run.add_argument("--scale", type=float, default=0.002, help="fraction of paper stream sizes")
    run.add_argument("--trials", type=int, default=None, help="trials per configuration")
    run.add_argument("--seed", type=int, default=2024, help="master random seed")
    run.add_argument("--out", type=Path, default=None, help="directory for CSV outputs")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for repeated-trial grids (bit-identical to serial)",
    )

    sweep = sub.add_parser(
        "sweep", help="run an ad-hoc (dataset x method x epsilon x trial) grid"
    )
    sweep.add_argument("--datasets", nargs="+", default=["zipf-1.1"], help="dataset registry keys")
    sweep.add_argument(
        "--methods", nargs="+", default=["ldp-join-sketch"], help="estimator registry names"
    )
    sweep.add_argument("--epsilons", nargs="+", type=float, default=[4.0])
    sweep.add_argument("--trials", type=int, default=5)
    sweep.add_argument("--scale", type=float, default=0.002, help="fraction of paper stream sizes")
    sweep.add_argument("--size", type=int, default=None, help="explicit per-stream length override")
    sweep.add_argument("--seed", type=int, default=2024)
    sweep.add_argument("--workers", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--trial-axis",
        choices=("exact", "grouped"),
        default="exact",
        help="'grouped' shares one hash/sample pass per (dataset, method) "
        "block (faster; common random numbers across epsilons/trials)",
    )
    sweep.add_argument("--k", type=int, default=18, help="sketch depth for sketch methods")
    sweep.add_argument("--m", type=int, default=1024, help="sketch width for sketch methods")
    sweep.add_argument("--out", type=Path, default=None, help="directory for the sweep CSV")
    return parser


def _run_one(name: str, args: argparse.Namespace) -> None:
    func = ALL_EXPERIMENTS[name]
    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.trials is not None and name not in ("table2", "fig7"):
        kwargs["trials"] = args.trials
    if name in ("table2", "fig7"):
        kwargs.pop("trials", None)
    if args.workers != 1 and "workers" in inspect.signature(func).parameters:
        kwargs["workers"] = args.workers
    start = time.perf_counter()
    table = func(**kwargs)
    elapsed = time.perf_counter() - start
    print(table.to_text())
    print(f"[{name} regenerated in {elapsed:.1f}s]")
    print()
    if args.out is not None:
        path = table.to_csv(Path(args.out) / f"{name}.csv")
        print(f"[wrote {path}]")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            for name in ALL_EXPERIMENTS:
                doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
                print(f"{name:8s} {doc}")
            return 0
        if args.command == "estimators":
            from ..api import available_estimators, get_estimator

            for name in available_estimators():
                estimator = get_estimator(name)
                tag = "LDP" if estimator.private else "non-private"
                print(f"{name:22s} {estimator.name:16s} [{tag}]")
            return 0
        if args.command == "sweep":
            from .sweep import sweep_table

            start = time.perf_counter()
            table = sweep_table(
                args.datasets,
                args.methods,
                args.epsilons,
                args.trials,
                scale=args.scale,
                size=args.size,
                seed=args.seed,
                workers=args.workers,
                trial_axis=args.trial_axis,
                k=args.k,
                m=args.m,
            )
            elapsed = time.perf_counter() - start
            print(table.to_text())
            print(f"[sweep completed in {elapsed:.1f}s]")
            if args.out is not None:
                path = table.to_csv(Path(args.out) / "sweep.csv")
                print(f"[wrote {path}]")
            return 0
        names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            _run_one(name, args)
    except BrokenPipeError:  # output piped into a pager/head that closed
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
