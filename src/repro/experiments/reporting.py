"""Plain-text and CSV result tables.

Every figure function returns a :class:`ResultTable`; the benchmark
harness prints its text rendering (the "regenerated figure") and can save
a CSV next to the benchmark output for downstream plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Union

from ..errors import ParameterError

__all__ = ["ResultTable"]

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


@dataclass
class ResultTable:
    """A titled table of experiment results."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append a row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ParameterError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Monospace rendering with aligned columns."""
        formatted = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the table (headers + rows) as CSV; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        return path

    def column(self, name: str) -> List[Cell]:
        """Extract one column by header name."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise ParameterError(f"no column {name!r} in {list(self.headers)}") from None
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria: Cell) -> "ResultTable":
        """Sub-table keeping rows whose named columns equal the criteria."""
        indices = {}
        for name in criteria:
            if name not in self.headers:
                raise ParameterError(f"no column {name!r} in {list(self.headers)}")
            indices[name] = list(self.headers).index(name)
        rows = [
            row
            for row in self.rows
            if all(row[indices[name]] == value for name, value in criteria.items())
        ]
        return ResultTable(self.title, self.headers, rows, list(self.notes))

    def __str__(self) -> str:
        return self.to_text()
