"""Multiway chain-join workloads and estimators (Fig. 15 support).

A chain instance materialises ``T1(X0) join T2(X0, X1) join ... join
Tn(X_{n-2})``: two single-attribute end tables and ``n - 2`` two-attribute
middle tables.  Three estimator families answer it:

* :func:`compass_estimate` — the non-private COMPASS baseline;
* :func:`ldp_compass_estimate` — the paper's Section VI LDP protocol;
* :func:`frequency_chain_estimate` — frequency-oracle baselines (k-RR,
  FLH, Apple-HCMS): ends are estimated per value, a middle table's tuple
  ``(a, b)`` is reported as the single item ``a * |X1| + b`` of the product
  domain, and the chain is contracted through the estimated joint matrix.
  The product domain is why these methods are so expensive — the very
  point Fig. 15 makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Type

import numpy as np

from ..core.multiway import LDPCompassProtocol
from ..data.base import DataGenerator
from ..errors import ParameterError
from ..join import exact_multiway_chain_size
from ..mechanisms.base import FrequencyOracle
from ..rng import RandomState, derive_seed, ensure_rng
from ..sketches import CompassChainSketches
from ..validation import require_positive_int

__all__ = [
    "ChainInstance",
    "make_chain_instance",
    "compass_estimate",
    "ldp_compass_estimate",
    "frequency_chain_estimate",
]


@dataclass
class ChainInstance:
    """A concrete chain-join workload with exact ground truth."""

    name: str
    end_first: np.ndarray
    middles: List[Tuple[np.ndarray, np.ndarray]]
    end_last: np.ndarray
    domain_sizes: List[int]
    _truth: Optional[int] = field(default=None, repr=False)

    @property
    def num_way(self) -> int:
        """Number of tables in the chain."""
        return len(self.middles) + 2

    @property
    def true_size(self) -> int:
        """Exact chain-join size (cached)."""
        if self._truth is None:
            self._truth = exact_multiway_chain_size(
                (self.end_first, self.end_last), self.middles, self.domain_sizes
            )
        return self._truth


def make_chain_instance(
    num_way: int,
    generator: DataGenerator,
    table_size: int,
    seed: RandomState = None,
) -> ChainInstance:
    """Draw an ``num_way``-table chain where every column is i.i.d.
    from ``generator``'s population.

    A ``num_way``-way chain has ``num_way - 1`` join attributes, all sharing
    the generator's domain.
    """
    num_way = require_positive_int("num_way", num_way, minimum=2)
    table_size = require_positive_int("table_size", table_size)
    rng = ensure_rng(seed)
    num_attributes = num_way - 1
    end_first = generator.sample(table_size, rng)
    end_last = generator.sample(table_size, rng)
    middles = [
        (generator.sample(table_size, rng), generator.sample(table_size, rng))
        for _ in range(num_way - 2)
    ]
    return ChainInstance(
        name=f"{num_way}-way/{generator.name}",
        end_first=end_first,
        middles=middles,
        end_last=end_last,
        domain_sizes=[generator.domain_size] * num_attributes,
    )


def compass_estimate(
    chain: ChainInstance,
    k: int,
    m: int,
    seed: RandomState = None,
) -> float:
    """Non-private COMPASS estimate of the chain size."""
    sketches = CompassChainSketches([m] * (chain.num_way - 1), k, seed)
    first = sketches.build_end(0, chain.end_first)
    last = sketches.build_end(chain.num_way - 2, chain.end_last)
    middles = [
        sketches.build_middle(idx, left, right)
        for idx, (left, right) in enumerate(chain.middles)
    ]
    return sketches.estimate_chain(first, middles, last)


def ldp_compass_estimate(
    chain: ChainInstance,
    k: int,
    m: int,
    epsilon: float,
    seed: RandomState = None,
) -> float:
    """Section VI LDP multiway estimate of the chain size."""
    rng = ensure_rng(seed)
    protocol = LDPCompassProtocol([m] * (chain.num_way - 1), k, epsilon, derive_seed(rng))
    first = protocol.build_end(0, protocol.encode_end(0, chain.end_first, rng))
    last_attr = chain.num_way - 2
    last = protocol.build_end(last_attr, protocol.encode_end(last_attr, chain.end_last, rng))
    middles = [
        protocol.build_middle(idx, protocol.encode_middle(idx, left, right, rng))
        for idx, (left, right) in enumerate(chain.middles)
    ]
    return protocol.estimate_chain(first, middles, last)


def frequency_chain_estimate(
    oracle_cls: Type[FrequencyOracle],
    chain: ChainInstance,
    epsilon: float,
    seed: RandomState = None,
    **oracle_kwargs: object,
) -> float:
    """Chain estimate from per-table frequency oracles.

    Ends use an oracle over their attribute domain; middle tables use an
    oracle over the *product* domain of their two attributes (each tuple
    reported as one item), from which the estimated joint count matrix is
    reshaped and contracted.
    """
    rng = ensure_rng(seed)
    domains = chain.domain_sizes
    if any(d < 2 for d in domains):
        raise ParameterError("frequency-based chain estimation needs domains >= 2")

    first_oracle = oracle_cls(domains[0], epsilon, derive_seed(rng), **oracle_kwargs)
    first_oracle.collect(chain.end_first)
    acc = first_oracle.all_frequencies()

    for idx, (left, right) in enumerate(chain.middles):
        d_left, d_right = domains[idx], domains[idx + 1]
        product_oracle = oracle_cls(
            d_left * d_right, epsilon, derive_seed(rng), **oracle_kwargs
        )
        product_oracle.collect(left * d_right + right)
        joint = product_oracle.all_frequencies().reshape(d_left, d_right)
        acc = acc @ joint

    last_oracle = oracle_cls(domains[-1], epsilon, derive_seed(rng), **oracle_kwargs)
    last_oracle.collect(chain.end_last)
    return float(acc @ last_oracle.all_frequencies())
