"""Back-compat surface over the estimator registry (:mod:`repro.api`).

The per-method estimation logic used to live here as a parallel adapter
hierarchy; it now lives once, in :mod:`repro.api.estimators`, behind the
string-keyed registry.  This module keeps the historical names importable
(``FAGMSMethod``, ``LDPJoinSketchMethod``, ``MethodResult``, ...) and
provides :func:`default_methods`, the Fig. 5 line-up, resolved through
:func:`repro.api.get_estimator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import get_estimator
from ..api.estimators import (
    BaseEstimator,
    CompassEstimator,
    FAGMSEstimator,
    FLHEstimator,
    HCMSEstimator,
    KRREstimator,
    LDPJoinSketchEstimator,
    LDPJoinSketchPlusEstimator,
    OLHEstimator,
)
from ..api.registry import JoinEstimator
from ..api.result import EstimateResult

__all__ = [
    "MethodResult",
    "JoinMethod",
    "FAGMSMethod",
    "KRRMethod",
    "FLHMethod",
    "HCMSMethod",
    "OLHMethod",
    "LDPJoinSketchMethod",
    "LDPJoinSketchPlusMethod",
    "CompassMethod",
    "default_methods",
]

# Deprecated aliases — one result type, one estimator hierarchy.
MethodResult = EstimateResult
JoinMethod = BaseEstimator
FAGMSMethod = FAGMSEstimator
KRRMethod = KRREstimator
FLHMethod = FLHEstimator
HCMSMethod = HCMSEstimator
OLHMethod = OLHEstimator
LDPJoinSketchMethod = LDPJoinSketchEstimator
LDPJoinSketchPlusMethod = LDPJoinSketchPlusEstimator
CompassMethod = CompassEstimator


def default_methods(
    k: int = 18,
    m: int = 1024,
    *,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    include: Optional[List[str]] = None,
) -> Dict[str, JoinEstimator]:
    """The Fig. 5 method line-up, keyed by display name.

    Each entry is resolved through the estimator registry; ``include``
    filters (and orders) by display name.
    """
    lineup = [
        get_estimator("fagms", k=k, m=m),
        get_estimator("krr"),
        get_estimator("hcms", k=k, m=m),
        get_estimator("flh"),
        get_estimator("ldp-join-sketch", k=k, m=m),
        get_estimator(
            "ldp-join-sketch-plus",
            k=k,
            m=m,
            sample_rate=sample_rate,
            threshold=threshold,
        ),
    ]
    methods = {method.name: method for method in lineup}
    if include is not None:
        methods = {name: methods[name] for name in include}
    return methods
