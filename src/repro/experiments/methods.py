"""The six join-size estimators of the evaluation behind one interface.

Fig. 5's legend is the definitive list: FAGMS (non-private Fast-AGMS),
k-RR, Apple-HCMS, FLH, LDPJoinSketch, LDPJoinSketch+.  Every adapter turns
a :class:`~repro.data.JoinInstance` and a privacy budget into a
:class:`MethodResult` carrying the estimate plus the cost accounting the
space/communication/efficiency figures need.

Frequency-oracle baselines (k-RR, FLH, Apple-HCMS) estimate the join size
the way the paper describes: estimate the whole frequency vector of each
attribute, then sum the products over the domain — accumulating one
estimation error per candidate value.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import SketchParams, run_ldp_join_sketch, run_ldp_join_sketch_plus
from ..data.base import JoinInstance
from ..hashing import HashPairs
from ..mechanisms import (
    FLHOracle,
    FrequencyOracle,
    HCMSOracle,
    KRROracle,
    OLHOracle,
    estimate_join_via_frequencies,
)
from ..rng import RandomState, derive_seed, ensure_rng
from ..sketches import FastAGMSSketch

__all__ = [
    "MethodResult",
    "JoinMethod",
    "FAGMSMethod",
    "KRRMethod",
    "FLHMethod",
    "HCMSMethod",
    "OLHMethod",
    "LDPJoinSketchMethod",
    "LDPJoinSketchPlusMethod",
    "default_methods",
]


@dataclass(frozen=True)
class MethodResult:
    """One method's answer to one join instance."""

    estimate: float
    offline_seconds: float
    online_seconds: float
    uplink_bits: int
    sketch_bytes: int


class JoinMethod(abc.ABC):
    """A join-size estimation method (private or baseline)."""

    #: Display name used in result tables (matches the figure legends).
    name: str = "abstract"
    #: Whether the method provides an LDP guarantee.
    private: bool = True

    @abc.abstractmethod
    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> MethodResult:
        """Estimate the join size of ``instance`` under budget ``epsilon``."""

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Uplink bits one client transmits (cheap, no simulation).

        Default: the raw value, ``ceil(log2 domain)`` bits (non-private
        transmission); LDP methods override with their wire format.
        """
        return max(1, math.ceil(math.log2(domain_size)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class FAGMSMethod(JoinMethod):
    """Non-private Fast-AGMS — the accuracy ceiling of the sketch family."""

    name = "FAGMS"
    private = False

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> MethodResult:
        """Build two plain Fast-AGMS sketches; ``epsilon`` is ignored."""
        rng = ensure_rng(seed)
        start = time.perf_counter()
        pairs = HashPairs(self.k, self.m, rng)
        sketch_a = FastAGMSSketch(pairs)
        sketch_a.update_batch(instance.values_a)
        sketch_b = FastAGMSSketch(pairs)
        sketch_b.update_batch(instance.values_b)
        offline = time.perf_counter() - start
        start = time.perf_counter()
        estimate = sketch_a.inner_product(sketch_b)
        online = time.perf_counter() - start
        raw_bits = max(1, math.ceil(math.log2(instance.domain_size)))
        return MethodResult(
            estimate=estimate,
            offline_seconds=offline,
            online_seconds=online,
            uplink_bits=(instance.size_a + instance.size_b) * raw_bits,
            sketch_bytes=sketch_a.memory_bytes() + sketch_b.memory_bytes(),
        )


class _FrequencyOracleMethod(JoinMethod):
    """Shared driver for the frequency-vector join baselines.

    ``calibrate`` clips negative frequency estimates to zero before the
    product, matching the paper's "calibrated frequency vectors".  On
    large domains the clipped noise no longer cancels across candidates,
    which is precisely the cumulative-error behaviour the paper reports
    for these baselines; ``calibrate=False`` keeps the raw unbiased
    estimates (see the calibration ablation bench).
    """

    def __init__(self, *, calibrate: bool = True) -> None:
        self.calibrate = calibrate

    def _make_oracle(
        self, domain_size: int, epsilon: float, seed: RandomState
    ) -> FrequencyOracle:
        raise NotImplementedError

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> MethodResult:
        """Collect both attributes' reports, join via frequency vectors."""
        rng = ensure_rng(seed)
        start = time.perf_counter()
        oracle_a = self._make_oracle(instance.domain_size, epsilon, derive_seed(rng))
        oracle_b = self._make_oracle(instance.domain_size, epsilon, derive_seed(rng))
        oracle_a.collect(instance.values_a)
        oracle_b.collect(instance.values_b)
        offline = time.perf_counter() - start
        start = time.perf_counter()
        estimate = estimate_join_via_frequencies(
            oracle_a, oracle_b, clip_negative=self.calibrate
        )
        online = time.perf_counter() - start
        return MethodResult(
            estimate=estimate,
            offline_seconds=offline,
            online_seconds=online,
            uplink_bits=(instance.size_a * oracle_a.report_bits)
            + (instance.size_b * oracle_b.report_bits),
            sketch_bytes=oracle_a.memory_bytes() + oracle_b.memory_bytes(),
        )


class KRRMethod(_FrequencyOracleMethod):
    """k-RR with calibrated frequency vectors."""

    name = "k-RR"

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> KRROracle:
        return KRROracle(domain_size, epsilon, seed)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """One domain value per client."""
        return KRROracle(domain_size, epsilon, 0).report_bits


class FLHMethod(_FrequencyOracleMethod):
    """Fast Local Hashing with a shared hash pool.

    The pool size (``K'``) defaults to 256 — inside the range Cormode et
    al. recommend (1e2-1e4) and 2x cheaper to scan at estimation time than
    the oracle-level default; accuracy at laptop-scale n is unaffected.
    """

    name = "FLH"

    def __init__(self, pool_size: int = 256, *, calibrate: bool = True) -> None:
        super().__init__(calibrate=calibrate)
        self.pool_size = pool_size

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> FLHOracle:
        return FLHOracle(domain_size, epsilon, seed, pool_size=self.pool_size)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Pool index plus a GRR report over [g]."""
        return FLHOracle(domain_size, epsilon, 0, pool_size=self.pool_size).report_bits


class HCMSMethod(_FrequencyOracleMethod):
    """Apple-HCMS summed over the domain."""

    name = "Apple-HCMS"

    def __init__(self, k: int = 18, m: int = 1024, *, calibrate: bool = True) -> None:
        super().__init__(calibrate=calibrate)
        self.k = k
        self.m = m

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> HCMSOracle:
        return HCMSOracle(domain_size, epsilon, seed, k=self.k, m=self.m)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class OLHMethod(_FrequencyOracleMethod):
    """Exact Optimal Local Hashing (one fresh hash per client).

    Not part of the paper's Fig. 5 line-up (FLH is its fast variant), but
    included for completeness; server-side estimation is Theta(n * |D|),
    so keep it to moderate domains.
    """

    name = "OLH"

    def _make_oracle(self, domain_size: int, epsilon: float, seed: RandomState) -> OLHOracle:
        return OLHOracle(domain_size, epsilon, seed)

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """64-bit hash seed plus a GRR report over [g]."""
        return OLHOracle(domain_size, epsilon, 0).report_bits


class LDPJoinSketchMethod(JoinMethod):
    """The paper's single-phase protocol (Algorithms 1-2, Eq. 5)."""

    name = "LDPJoinSketch"

    def __init__(self, k: int = 18, m: int = 1024) -> None:
        self.k = k
        self.m = m

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> MethodResult:
        """Run the full client/server simulation."""
        result = run_ldp_join_sketch(
            instance.values_a,
            instance.values_b,
            SketchParams(self.k, self.m, epsilon),
            seed=seed,
        )
        return MethodResult(
            estimate=result.estimate,
            offline_seconds=result.offline_seconds,
            online_seconds=result.online_seconds,
            uplink_bits=result.uplink_bits,
            sketch_bytes=result.sketch_bytes,
        )

    def report_bits_for(self, domain_size: int, epsilon: float) -> int:
        """Sign bit plus row and column indices."""
        return SketchParams(self.k, self.m, epsilon).report_bits


class LDPJoinSketchPlusMethod(JoinMethod):
    """The paper's two-phase protocol (Algorithms 3-5)."""

    name = "LDPJoinSketch+"

    def __init__(
        self,
        k: int = 18,
        m: int = 1024,
        sample_rate: float = 0.1,
        threshold: float = 0.01,
        *,
        phase1_m: Optional[int] = None,
        paper_faithful_correction: bool = False,
    ) -> None:
        self.k = k
        self.m = m
        self.sample_rate = sample_rate
        self.threshold = threshold
        self.phase1_m = phase1_m
        self.paper_faithful_correction = paper_faithful_correction

    def estimate(
        self,
        instance: JoinInstance,
        epsilon: float,
        seed: RandomState = None,
    ) -> MethodResult:
        """Run both phases of the protocol."""
        params = SketchParams(self.k, self.m, epsilon)
        phase1 = (
            SketchParams(self.k, self.phase1_m, epsilon) if self.phase1_m is not None else None
        )
        start = time.perf_counter()
        result = run_ldp_join_sketch_plus(
            instance.values_a,
            instance.values_b,
            instance.domain_size,
            params,
            sample_rate=self.sample_rate,
            threshold=self.threshold,
            phase1_params=phase1,
            paper_faithful_correction=self.paper_faithful_correction,
            seed=seed,
        )
        offline = time.perf_counter() - start
        return MethodResult(
            estimate=result.estimate,
            offline_seconds=offline,
            online_seconds=result.online_seconds,
            uplink_bits=result.uplink_bits,
            sketch_bytes=result.sketch_bytes,
        )


def default_methods(
    k: int = 18,
    m: int = 1024,
    *,
    sample_rate: float = 0.1,
    threshold: float = 0.01,
    include: Optional[List[str]] = None,
) -> Dict[str, JoinMethod]:
    """The Fig. 5 method line-up, keyed by display name."""
    methods: Dict[str, JoinMethod] = {}
    for method in (
        FAGMSMethod(k, m),
        KRRMethod(),
        HCMSMethod(k, m),
        FLHMethod(),
        LDPJoinSketchMethod(k, m),
        LDPJoinSketchPlusMethod(k, m, sample_rate, threshold),
    ):
        methods[method.name] = method
    if include is not None:
        methods = {name: methods[name] for name in include}
    return methods
