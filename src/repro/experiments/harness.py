"""Repeated-trial experiment runner.

Every figure reduces to the same loop: for each (dataset, method,
parameter point), run the method ``trials`` times with derived seeds and
aggregate AE / RE over the trials.  :func:`run_trials` produces the raw
:class:`TrialRecord` list; :func:`summarize` collapses it into the means
the paper plots.

``run_trials`` is the sweep engine's unit of work
(:mod:`repro.experiments.sweep`): trial seeds are derived up front in the
historical draw order, then executed either through a method's trial-axis
fast path (``estimate_trials``, bit-for-bit the serial loop), through the
plain serial loop, or — with ``workers > 1`` — fanned out across worker
processes in contiguous seed blocks.  All three routes produce identical
estimates for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..api.registry import JoinEstimator
from ..data.base import JoinInstance
from ..rng import RandomState, derive_seed, ensure_rng
from ..validation import require_positive_int

__all__ = ["TrialRecord", "run_trials", "run_seeded_trials", "summarize"]


@dataclass(frozen=True)
class TrialRecord:
    """One method invocation on one instance."""

    method: str
    dataset: str
    epsilon: float
    truth: float
    estimate: float
    offline_seconds: float
    online_seconds: float
    uplink_bits: int
    sketch_bytes: int

    @property
    def absolute_error(self) -> float:
        """``|J - J^|`` of this trial."""
        return abs(self.estimate - self.truth)

    @property
    def relative_error(self) -> float:
        """``|J - J^| / J`` of this trial (``nan`` when the truth is 0).

        ``nan`` rather than ``inf`` so that aggregation can skip the
        undefined trials (:func:`summarize` uses a nan-aware mean) instead
        of poisoning every downstream mean with infinities.
        """
        return self.absolute_error / abs(self.truth) if self.truth else float("nan")


def run_trials(
    method: JoinEstimator,
    instance: JoinInstance,
    epsilon: float,
    trials: int = 3,
    seed: RandomState = None,
    *,
    workers: int = 1,
    vectorize: bool = True,
) -> List[TrialRecord]:
    """Run ``method`` on ``instance`` ``trials`` times with derived seeds.

    Seeds are derived from ``seed`` exactly as the historical serial loop
    did (one :func:`~repro.rng.derive_seed` per trial, in order), so the
    records are reproducible across execution strategies: the trial-axis
    fast path and the ``workers > 1`` process fan-out both yield the same
    estimates as the serial loop under the same master seed.

    ``vectorize=False`` forces one full ``estimate`` call per trial even
    when the method has a trial-axis fast path — estimates are identical
    either way, but the *timing* fields then measure one complete
    per-trial run instead of a shared batch split evenly (what a timing
    figure such as fig. 13 must report).
    """
    trials = require_positive_int("trials", trials)
    workers = require_positive_int("workers", workers)
    rng = ensure_rng(seed)
    trial_seeds = [derive_seed(rng) for _ in range(trials)]
    if workers > 1:
        from .sweep import run_seeded_trials_parallel

        return run_seeded_trials_parallel(
            method, instance, epsilon, trial_seeds, workers=workers, vectorize=vectorize
        )
    return run_seeded_trials(method, instance, epsilon, trial_seeds, vectorize=vectorize)


def run_seeded_trials(
    method: JoinEstimator,
    instance: JoinInstance,
    epsilon: float,
    trial_seeds: Sequence[int],
    *,
    vectorize: bool = True,
) -> List[TrialRecord]:
    """Run one trial per explicit seed (the sweep engine's work unit).

    Routes through the method's trial-axis fast path when it has one
    (``estimate_trials``, pinned bit-for-bit against the serial loop);
    otherwise — or with ``vectorize=False`` (per-trial timing fidelity) —
    falls back to one ``estimate`` call per seed.
    """
    truth = float(instance.true_join_size)
    estimate_trials = getattr(method, "estimate_trials", None) if vectorize else None
    if estimate_trials is not None:
        results = estimate_trials(instance, epsilon, list(trial_seeds))
    else:
        results = [method.estimate(instance, epsilon, s) for s in trial_seeds]
    return [
        TrialRecord(
            method=method.name,
            dataset=instance.name,
            epsilon=epsilon,
            truth=truth,
            estimate=result.estimate,
            offline_seconds=result.offline_seconds,
            online_seconds=result.online_seconds,
            uplink_bits=result.uplink_bits,
            sketch_bytes=result.sketch_bytes,
        )
        for result in results
    ]


def summarize(records: Iterable[TrialRecord]) -> Dict[str, float]:
    """Aggregate a trial list into the quantities the figures plot.

    One structured pass: the records are packed into a single ``(n, 6)``
    float matrix and every mean is a column reduction — no per-field
    list comprehensions.  The relative error uses a nan-aware mean so a
    zero-truth trial (RE undefined) does not poison the summary; it is
    ``nan`` only when *every* trial's truth is zero.
    """
    records = list(records)
    if not records:
        return {}
    data = np.array(
        [
            (
                r.truth,
                r.estimate,
                r.offline_seconds,
                r.online_seconds,
                r.uplink_bits,
                r.sketch_bytes,
            )
            for r in records
        ],
        dtype=np.float64,
    )
    truth_col, estimates = data[:, 0], data[:, 1]
    abs_errors = np.abs(estimates - truth_col)
    defined = truth_col != 0
    means = data.mean(axis=0)
    return {
        "trials": float(len(records)),
        "truth": records[0].truth,
        "mean_estimate": float(means[1]),
        "ae": float(abs_errors.mean()),
        "re": float(np.mean(abs_errors[defined] / np.abs(truth_col[defined])))
        if defined.any()
        else float("nan"),
        "offline_seconds": float(means[2]),
        "online_seconds": float(means[3]),
        "uplink_bits": float(means[4]),
        "sketch_bytes": float(means[5]),
    }
