"""Repeated-trial experiment runner.

Every figure reduces to the same loop: for each (dataset, method,
parameter point), run the method ``trials`` times with derived seeds and
aggregate AE / RE over the trials.  :func:`run_trials` produces the raw
:class:`TrialRecord` list; :func:`summarize` collapses it into the means
the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..api.registry import JoinEstimator
from ..data.base import JoinInstance
from ..rng import RandomState, derive_seed, ensure_rng
from ..validation import require_positive_int

__all__ = ["TrialRecord", "run_trials", "summarize"]


@dataclass(frozen=True)
class TrialRecord:
    """One method invocation on one instance."""

    method: str
    dataset: str
    epsilon: float
    truth: float
    estimate: float
    offline_seconds: float
    online_seconds: float
    uplink_bits: int
    sketch_bytes: int

    @property
    def absolute_error(self) -> float:
        """``|J - J^|`` of this trial."""
        return abs(self.estimate - self.truth)

    @property
    def relative_error(self) -> float:
        """``|J - J^| / J`` of this trial."""
        return self.absolute_error / abs(self.truth) if self.truth else float("inf")


def run_trials(
    method: JoinEstimator,
    instance: JoinInstance,
    epsilon: float,
    trials: int = 3,
    seed: RandomState = None,
) -> List[TrialRecord]:
    """Run ``method`` on ``instance`` ``trials`` times with derived seeds."""
    trials = require_positive_int("trials", trials)
    rng = ensure_rng(seed)
    truth = float(instance.true_join_size)
    records = []
    for _ in range(trials):
        result = method.estimate(instance, epsilon, derive_seed(rng))
        records.append(
            TrialRecord(
                method=method.name,
                dataset=instance.name,
                epsilon=epsilon,
                truth=truth,
                estimate=result.estimate,
                offline_seconds=result.offline_seconds,
                online_seconds=result.online_seconds,
                uplink_bits=result.uplink_bits,
                sketch_bytes=result.sketch_bytes,
            )
        )
    return records


def summarize(records: Iterable[TrialRecord]) -> Dict[str, float]:
    """Aggregate a trial list into the quantities the figures plot."""
    records = list(records)
    if not records:
        return {}
    return {
        "trials": float(len(records)),
        "truth": records[0].truth,
        "mean_estimate": float(np.mean([r.estimate for r in records])),
        "ae": float(np.mean([r.absolute_error for r in records])),
        "re": float(np.mean([r.relative_error for r in records])),
        "offline_seconds": float(np.mean([r.offline_seconds for r in records])),
        "online_seconds": float(np.mean([r.online_seconds for r in records])),
        "uplink_bits": float(np.mean([r.uplink_bits for r in records])),
        "sketch_bytes": float(np.mean([r.sketch_bytes for r in records])),
    }
