"""Ablation: calibrated vs raw frequency vectors for the join baselines.

The paper computes baseline join sizes from *calibrated* (non-negative)
frequency vectors.  Clipping matters enormously: raw debiased estimates
have zero-mean noise that largely cancels in the domain-wide product sum,
while clipping rectifies the noise into a positive bias accumulated over
every domain value — the "cumulative error" the paper attributes to these
baselines.  This bench quantifies both variants of k-RR on a large-domain
workload so the reproduction choice (calibrate=True, matching the paper)
is auditable.
"""

from __future__ import annotations

import numpy as np

from repro.api import get_estimator
from repro.data import make_join_instance
from repro.experiments.reporting import ResultTable

from conftest import BENCH_SCALE, BENCH_SEED, RESULTS_DIR


def test_ablation_calibration(benchmark):
    instance = make_join_instance("zipf-1.1", scale=BENCH_SCALE, seed=BENCH_SEED)
    truth = float(instance.true_join_size)

    def run():
        table = ResultTable(
            "Ablation: calibrated vs raw frequency vectors (k-RR, Zipf 1.1, eps=4)",
            ["variant", "mean_estimate", "re"],
        )
        for name, calibrate in (("calibrated (paper)", True), ("raw debiased", False)):
            method = get_estimator("krr", calibrate=calibrate)
            estimates = [
                method.estimate(instance, 4.0, seed=seed).estimate for seed in range(3)
            ]
            mean_est = float(np.mean(estimates))
            re = float(np.mean(np.abs(np.asarray(estimates) - truth)) / truth)
            table.add_row(name, mean_est, re)
        table.add_note(f"truth = {truth:.4g}; domain = {instance.domain_size}")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.to_text())
    table.to_csv(RESULTS_DIR / "ablation_calibration.csv")

    rows = {row[0]: row for row in table.rows}
    # Clipping turns cancelling noise into a large positive bias.
    assert rows["calibrated (paper)"][2] > rows["raw debiased"][2]
    assert rows["calibrated (paper)"][1] > truth
