"""Regenerate Fig. 8 (a-d): AE vs privacy budget epsilon.

Paper shape: every method improves as epsilon grows; k-RR/FLH improve
steeply (their error is perturbation-dominated); the sketch methods
flatten once sketch error dominates; ours lead at small epsilon.
"""

from repro.experiments.figures import fig8_epsilon

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS

EPSILONS = (0.1, 1, 2, 4, 6, 8, 10)


def test_fig8_epsilon(regenerate):
    table = regenerate(
        "fig8",
        fig8_epsilon,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
        epsilons=EPSILONS,
    )
    for dataset in ("zipf-1.5", "gaussian", "movielens", "twitter"):
        krr = table.filtered(dataset=dataset, method="k-RR")
        eps_to_ae = dict(zip(krr.column("epsilon"), krr.column("ae")))
        # k-RR error collapses by orders of magnitude from eps=0.1 to 10.
        assert eps_to_ae[0.1] > 10 * eps_to_ae[10.0]
        # Ours beats k-RR in the strong-privacy regime.
        ours = table.filtered(dataset=dataset, method="LDPJoinSketch")
        ours_ae = dict(zip(ours.column("epsilon"), ours.column("ae")))
        assert ours_ae[0.1] < eps_to_ae[0.1]
