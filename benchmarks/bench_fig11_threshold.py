"""Regenerate Fig. 11: LDPJoinSketch+ AE vs frequent-item threshold theta.

Paper shape: U-shaped error.  A tiny theta admits noise-level items into
the frequent set (inflating the removed mass); a huge theta leaves the set
empty, so no collision mitigation happens.  The sweet spot depends on the
data scale — at laptop scale it sits around theta ~ 1e-2 rather than the
paper's 1e-3 (the LDP noise floor is relatively higher; see
EXPERIMENTS.md).
"""

from repro.experiments.figures import fig11_threshold

from conftest import BENCH_SCALE, BENCH_SEED


def test_fig11_threshold(regenerate):
    table = regenerate(
        "fig11",
        fig11_threshold,
        scale=BENCH_SCALE,
        trials=5,
        seed=BENCH_SEED,
    )
    thetas = table.column("theta")
    fi_sizes = table.column("fi_size")
    assert thetas == sorted(thetas)
    # The frequent-item set shrinks with theta: far fewer items at the
    # largest threshold than at the smallest.  (Pairwise monotonicity does
    # not hold in the noise-flooded left arm, where the FI size hovers at
    # a large near-constant value.)
    assert fi_sizes[-1] < 0.01 * fi_sizes[0] + 10
    # The extreme right (theta=0.1, empty FI) must not be the best point -
    # otherwise separation would be pointless at every theta.
    errors = table.column("ae")
    assert min(errors) < errors[-1] or min(errors) < errors[0]
