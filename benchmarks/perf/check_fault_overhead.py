"""Fault-point overhead gate: unarmed hooks must be (nearly) free.

The reliability layer threads :func:`repro.reliability.faults.fault_point`
hooks through the ingest, collect, checkpoint and sweep paths.  With no
plan armed every hook is a single module-global ``None`` check, so the
production hot path must not pay for the instrumentation.  This script
measures the fused n-client ingest (``JoinSession.collect``, the same
kernel the perf suite's headline rows time) twice:

* **hooked** — the code as shipped, hooks live, no plan armed;
* **stubbed** — the importing modules' ``fault_point`` names rebound to a
  literal no-op, i.e. the pre-reliability hot path.

Both legs use best-of-``--repeats`` timing with one untimed warmup (the
perf suite's noise-floor idiom).  The run fails if the hooked leg is more
than ``--max-overhead`` (default 2%) slower than the stubbed leg.

Usage::

    PYTHONPATH=src python benchmarks/perf/check_fault_overhead.py          # n = 1M
    PYTHONPATH=src python benchmarks/perf/check_fault_overhead.py --quick  # n = 100k
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

import repro.api.session as session_module
import repro.distributed.collectors as collectors_module
from repro.api import JoinSession
from repro.core import SketchParams
from repro.reliability.faults import active_plan, disarm

FULL_N = 1_000_000
QUICK_N = 100_000

#: The perf suite's sketch shape (the paper's defaults).
BENCH_K = 18
BENCH_M = 1024
BENCH_EPSILON = 4.0
BENCH_SEED = 20240101


def _timed(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def _best_of_pair(hooked_fn, stubbed_fn, repeats: int) -> tuple:
    """Best wall-clock seconds of each leg, measured interleaved.

    Alternating the legs keeps slow drift (thermal, allocator growth)
    from landing entirely on one side — at sub-100ms run times that
    drift alone can exceed the 2% budget.
    """
    hooked_fn()  # untimed warmups
    stubbed_fn()
    hooked = stubbed = float("inf")
    for _ in range(repeats):
        hooked = min(hooked, _timed(hooked_fn))
        stubbed = min(stubbed, _timed(stubbed_fn))
    return hooked, stubbed


def _ingest(values: np.ndarray, params: SketchParams) -> None:
    session = JoinSession(params, seed=BENCH_SEED)
    session.collect("A", values)


class _stubbed_hooks:
    """Rebind every importing module's ``fault_point`` to a no-op.

    The hook modules import the function by name, so patching the
    defining module would not reach the call sites.
    """

    _TARGETS = (session_module, collectors_module)

    def __enter__(self):
        self._saved = [(mod, mod.fault_point) for mod in self._TARGETS]
        for mod in self._TARGETS:
            mod.fault_point = lambda name, **context: None
        return self

    def __exit__(self, *exc):
        for mod, original in self._saved:
            mod.fault_point = original
        return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=FULL_N)
    parser.add_argument(
        "--quick", action="store_true", help=f"use n = {QUICK_N} instead of 1M"
    )
    parser.add_argument("--repeats", type=int, default=15)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.02,
        help="maximum tolerated fractional slowdown of the hooked path",
    )
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else args.n

    disarm()
    assert active_plan() is None, "a fault plan is armed; the gate measures unarmed hooks"
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    values = np.random.default_rng(BENCH_SEED).integers(0, 1 << 20, size=n)

    def stubbed_ingest():
        with _stubbed_hooks():
            _ingest(values, params)

    hooked, stubbed = _best_of_pair(
        lambda: _ingest(values, params), stubbed_ingest, args.repeats
    )

    overhead = hooked / stubbed - 1.0 if stubbed > 0 else 0.0
    rate = n / hooked if hooked > 0 else float("inf")
    print(
        f"fused ingest n={n}: hooked {hooked:.4f}s ({rate:,.0f} clients/s), "
        f"stubbed {stubbed:.4f}s, overhead {overhead:+.2%} "
        f"(limit {args.max_overhead:.0%})"
    )
    if overhead > args.max_overhead:
        print(
            "FAIL: unarmed fault-point hooks exceed the overhead budget",
            file=sys.stderr,
        )
        return 1
    print("OK: unarmed fault-point hooks are within the overhead budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
