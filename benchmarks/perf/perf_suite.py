"""Hot-path microbenchmarks with a machine-readable trajectory file.

Unlike the figure benchmarks (which reproduce the paper's *accuracy*
plots), this suite tracks the *throughput* of the simulator's hot paths so
every PR has a perf baseline to beat:

* ``encode`` — client-side encoding throughput (clients/sec) of the
  batched and fused paths;
* ``aggregate`` — server-side accumulation throughput (reports/sec),
  ``np.add.at`` scatter versus flattened-index bincount;
* ``end_to_end`` — the headline number: encode→accumulate for ``n``
  clients, comparing a faithful replica of the pre-fused pipeline
  (per-row masked hashing, ``%``-reduction Horner, O(n) report arrays,
  ``np.add.at``) against :func:`repro.core.client.encode_reports_into`;
* ``estimate`` — query latency: sketch materialisation + Eq. (5), plus
  the cached re-query (the session keeps finalized post-FWHT sketches
  until the next collect/merge invalidates them);
* ``serialize`` — session payload round-trip, legacy ``tolist()`` JSON
  versus the packed base64 format, with payload sizes;
* ``sweep`` — the headline of the sweep engine: a paper-style
  (2 methods × 3 epsilons × 5 trials) grid on one dataset, comparing the
  pre-engine serial harness loop (one full ``estimate`` per trial)
  against the engine's exact mode (trial-axis fused kernel, bit-identical
  estimates) and grouped mode (one hash/sample pass per (dataset, method)
  block), plus a parallel-vs-serial bit-identity check;
* ``backends`` (schema v3) — per-compute-backend kernel throughput on the
  shared ABI (:mod:`repro.backend`): the fused encode→accumulate kernel,
  the FWHT butterfly and the k-wise Mersenne hash, one row per available
  backend (``numpy`` always; ``numba`` when importable).  This is the
  apples-to-apples compiled-vs-reference comparison CI's speedup floor
  reads;
* ``distributed`` (schema v4) — sharded scatter/gather collection
  (:mod:`repro.distributed`): one aggregator ingesting the whole
  population versus K shard aggregators ingesting their partitions.
  ``sharded_clients_per_sec`` is the parallel ingest capacity (the
  population over the *slowest shard's* wall-clock — K aggregators run
  concurrently in production), ``merge_seconds`` is the tree-merge cost
  of folding the K partials back, and ``identical`` certifies the merged
  accumulators are byte-identical to the single-aggregator run.
* ``service`` (schema v5) — the online aggregation service
  (:mod:`repro.service`) under load: a handful of keep-alive HTTP
  connections POST batched reports through the real asyncio server
  (socket → admission control → WAL append + fsync → shard fold),
  recording sustained acknowledged-report throughput, per-batch ack
  latency and ``GET /v1/estimate`` p50/p99 against the published
  snapshot.  CI's ``--min-service-ingest`` floor reads
  ``ingest_reports_per_sec``.  Schema v6 adds the replicated leg: the
  same load shape through a primary/standby pair in quorum-ack mode
  (each ack held for the standby's ``POST /v1/replicate`` apply), with
  ``quorum_ingest_reports_per_sec`` read by ``--min-quorum-ingest`` and
  ``quorum_digest_match`` certifying both nodes published byte-identical
  snapshots.  Schema v7 adds the windowed (temporal) leg: the same load
  shape against a service running with ``epoch_interval`` set, then a
  burst of ``GET /v1/estimate?window=W`` sliding-window queries, with
  ``window_estimates_per_sec`` read by ``--min-window-estimate``.

:func:`run_suite` returns a JSON-compatible payload;
:func:`validate_payload` is the schema check CI runs against the emitted
file.  The legacy implementations live here on purpose — they are the
recorded baseline, kept runnable so the speedup numbers stay reproducible
instead of rotting in a commit message.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Tuple

import numpy as np

from repro.accumulate import scatter_add_signed_units
from repro.api import JoinSession, get_estimator
from repro.backend import (
    available_backends,
    backend_available,
    get_backend,
    resolve_backend,
)
from repro.core import SketchParams, encode_reports, encode_reports_into
from repro.core.client import DEFAULT_CHUNK_SIZE
from repro.data import make_join_instance
from repro.experiments.sweep import plan_grid, run_sweep
from repro.hashing import HashPairs
from repro.hashing.kwise import MERSENNE_PRIME_31
from repro.rng import derive_seed, ensure_rng

SCHEMA_VERSION = 7

#: Shard count of the ``distributed`` section (one tree of depth 3).
DISTRIBUTED_SHARDS = 8

#: Headline population sizes.
FULL_N = 1_000_000
QUICK_N = 20_000

#: Per-stream population of the sweep grid (paper-style n >= 100k when full).
SWEEP_FULL_N = 100_000
SWEEP_QUICK_N = 20_000

#: The sweep grid: 2 methods x 3 epsilons x 5 trials on one dataset.
SWEEP_METHODS = ("ldp-join-sketch", "ldp-compass")
SWEEP_EPSILONS = (2.0, 4.0, 8.0)
SWEEP_TRIALS = 5
SWEEP_DATASET = "zipf-1.1"

#: Sketch shape of every benchmark (the paper's defaults).
BENCH_K = 18
BENCH_M = 1024
BENCH_EPSILON = 4.0
BENCH_SEED = 20240101


# ----------------------------------------------------------------------
# Pre-PR reference implementations (the recorded baseline)
# ----------------------------------------------------------------------
def _legacy_kwise(coefficients: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Horner evaluation with a ``%`` reduction per step (pre-PR KWiseHash)."""
    p = np.uint64(MERSENNE_PRIME_31)
    x = values.astype(np.uint64)
    acc = np.full(x.shape, coefficients[-1], dtype=np.uint64)
    for c in coefficients[-2::-1]:
        acc = (acc * x + c) % p
    return acc.astype(np.int64)


def _legacy_bucket_rows(pairs: HashPairs, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-row masked bucket evaluation (pre-PR ``HashPairs.bucket_rows``)."""
    out = np.empty(values.shape, dtype=np.int64)
    for j in range(pairs.k):
        mask = rows == j
        if np.any(mask):
            out[mask] = _legacy_kwise(pairs.bucket_hashes[j].coefficients, values[mask]) % pairs.m
    return out


def _legacy_sign_rows(pairs: HashPairs, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-row masked sign evaluation (pre-PR ``HashPairs.sign_rows``)."""
    out = np.empty(values.shape, dtype=np.int64)
    for j in range(pairs.k):
        mask = rows == j
        if np.any(mask):
            raw = _legacy_kwise(pairs.sign_hashes[j].base.coefficients, values[mask])
            out[mask] = 1 - 2 * (raw & 1)
    return out


def _legacy_encode_aggregate(
    values: np.ndarray, params: SketchParams, pairs: HashPairs, rng: np.random.Generator
) -> np.ndarray:
    """Pre-PR end-to-end path: O(n) report arrays + ``np.add.at`` scatter."""
    from repro.transform.hadamard import sample_hadamard_entries

    n = values.size
    rows = rng.integers(0, params.k, size=n)
    cols = rng.integers(0, params.m, size=n)
    buckets = _legacy_bucket_rows(pairs, rows, values)
    signs = _legacy_sign_rows(pairs, rows, values)
    w = signs * sample_hadamard_entries(buckets, cols, params.m)
    flips = rng.random(n) < params.flip_probability
    ys = np.where(flips, -w, w).astype(np.int64)
    raw = np.zeros((params.k, params.m), dtype=np.float64)
    np.add.at(raw, (rows, cols), params.scale * ys.astype(np.float64))
    return raw


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def _best_of(func: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` runs (noise floor).

    One untimed warmup run precedes the measurement so page faults, lazy
    imports and allocator growth don't land in the recorded numbers.
    """
    func()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _rate(n: int, seconds: float) -> float:
    return float(n / seconds) if seconds > 0 else float("inf")


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _bench_encode(n: int, repeats: int) -> Dict[str, float]:
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    pairs = HashPairs(params.k, params.m, seed=BENCH_SEED)
    values = np.random.default_rng(BENCH_SEED).integers(0, 1 << 20, size=n)
    batched = _best_of(
        lambda: encode_reports(values, params, pairs, np.random.default_rng(1)), repeats
    )
    out = np.zeros((params.k, params.m), dtype=np.int64)
    fused = _best_of(
        lambda: encode_reports_into(values, params, pairs, out, np.random.default_rng(1)),
        repeats,
    )
    return {
        "n": n,
        "batched_seconds": batched,
        "batched_clients_per_sec": _rate(n, batched),
        "fused_seconds": fused,
        "fused_clients_per_sec": _rate(n, fused),
    }


def _bench_aggregate(n: int, repeats: int) -> Dict[str, float]:
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    rng = np.random.default_rng(BENCH_SEED)
    rows = rng.integers(0, params.k, size=n)
    cols = rng.integers(0, params.m, size=n)
    ys = rng.choice(np.array([-1, 1], dtype=np.int64), size=n)

    def run_add_at():
        raw = np.zeros((params.k, params.m), dtype=np.int64)
        np.add.at(raw, (rows, cols), ys)
        return raw

    def run_bincount():
        raw = np.zeros((params.k, params.m), dtype=np.int64)
        scatter_add_signed_units(raw, (rows, cols), ys)
        return raw

    assert np.array_equal(run_add_at(), run_bincount())
    add_at = _best_of(run_add_at, repeats)
    bincount = _best_of(run_bincount, repeats)
    return {
        "n": n,
        "add_at_seconds": add_at,
        "add_at_reports_per_sec": _rate(n, add_at),
        "bincount_seconds": bincount,
        "bincount_reports_per_sec": _rate(n, bincount),
        "speedup": add_at / bincount if bincount > 0 else float("inf"),
    }


def _bench_end_to_end(n: int, repeats: int) -> Dict[str, float]:
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    pairs = HashPairs(params.k, params.m, seed=BENCH_SEED)
    values = np.random.default_rng(BENCH_SEED).integers(0, 1 << 20, size=n)
    baseline = _best_of(
        lambda: _legacy_encode_aggregate(values, params, pairs, np.random.default_rng(1)),
        repeats,
    )

    def run_fused():
        out = np.zeros((params.k, params.m), dtype=np.int64)
        encode_reports_into(values, params, pairs, out, np.random.default_rng(1))
        return out

    fused = _best_of(run_fused, repeats)
    return {
        "n": n,
        "baseline_seconds": baseline,
        "baseline_clients_per_sec": _rate(n, baseline),
        "fused_seconds": fused,
        "fused_clients_per_sec": _rate(n, fused),
        "speedup": baseline / fused if fused > 0 else float("inf"),
    }


def _bench_estimate(n: int, repeats: int) -> Dict[str, float]:
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    session = JoinSession(params, seed=BENCH_SEED)
    rng = np.random.default_rng(BENCH_SEED)
    session.collect("A", rng.integers(0, 1 << 16, size=n))
    session.collect("B", rng.integers(0, 1 << 16, size=n))

    def run_estimate():
        # Invalidate the cache so each run pays materialisation + query.
        for state in session._streams.values():
            state.cached = None
        return session.estimate("A", "B")

    seconds = _best_of(run_estimate, repeats)
    # Cached re-query: the session holds the finalized post-FWHT sketches
    # until collect/merge invalidates them, so repeated queries skip the
    # transform entirely.
    session.estimate("A", "B")
    cached_seconds = _best_of(lambda: session.estimate("A", "B"), repeats)
    return {
        "n": n,
        "estimate_seconds": seconds,
        "estimate_cached_seconds": cached_seconds,
    }


def _sweep_estimates(records) -> Tuple[float, ...]:
    return tuple(r.estimate for unit_records in records for r in unit_records)


def _bench_sweep(n: int, repeats: int, parallel_workers: int = 2) -> Dict[str, float]:
    """Paper-style grid: pre-engine serial harness vs the sweep engine."""
    instance = make_join_instance(SWEEP_DATASET, size=n, seed=BENCH_SEED)
    instance.true_join_size  # materialise the ground truth outside timing
    methods = {}
    for name in SWEEP_METHODS:
        estimator = get_estimator(name, k=BENCH_K, m=BENCH_M)
        methods[estimator.name] = estimator
    epsilons = list(SWEEP_EPSILONS)
    master = BENCH_SEED

    def legacy_serial():
        # Faithful replica of the pre-engine harness: per grid point one
        # derived unit seed, per trial one full estimator run (fresh
        # session, fresh pairs, chunked encode, FWHT, query).  The seed
        # derivation order matches plan_grid, so the exact engine's
        # estimates can be compared 1:1.
        rng = ensure_rng(master)
        estimates = []
        derive_seed(rng)  # the dataset's instance seed
        for method in methods.values():
            for epsilon in epsilons:
                unit_rng = ensure_rng(derive_seed(rng))
                for _ in range(SWEEP_TRIALS):
                    estimates.append(
                        method.estimate(instance, epsilon, derive_seed(unit_rng)).estimate
                    )
        return tuple(estimates)

    def engine(trial_axis: str, workers: int = 1):
        plan = plan_grid(
            [SWEEP_DATASET],
            methods,
            epsilons,
            SWEEP_TRIALS,
            seed=master,
            trial_axis=trial_axis,
            instances={SWEEP_DATASET: instance},
        )
        return _sweep_estimates(run_sweep(plan, workers=workers))

    serial_seconds = _best_of(legacy_serial, repeats)
    exact_seconds = _best_of(lambda: engine("exact"), repeats)
    grouped_seconds = _best_of(lambda: engine("grouped"), repeats)
    exact_identical = legacy_serial() == engine("exact")
    serial_grouped = engine("grouped")
    parallel_start = time.perf_counter()
    parallel_grouped = engine("grouped", workers=parallel_workers)
    parallel_seconds = time.perf_counter() - parallel_start
    units = len(methods) * len(epsilons)
    return {
        "n": n,
        "datasets": 1,
        "methods": len(methods),
        "epsilons": len(epsilons),
        "trials": SWEEP_TRIALS,
        "units": units,
        "serial_seconds": serial_seconds,
        "exact_seconds": exact_seconds,
        "grouped_seconds": grouped_seconds,
        "speedup": serial_seconds / grouped_seconds if grouped_seconds > 0 else float("inf"),
        "exact_speedup": serial_seconds / exact_seconds if exact_seconds > 0 else float("inf"),
        "exact_identical": 1.0 if exact_identical else 0.0,
        "parallel_workers": parallel_workers,
        "parallel_seconds": parallel_seconds,
        "parallel_identical": 1.0 if parallel_grouped == serial_grouped else 0.0,
    }


#: Kernel names of the ``backends`` section (schema v3).
BACKEND_KERNELS = ("fused_encode", "fwht", "hashing")

#: FWHT batch shape of the backend comparison (rows × BENCH_M).
FWHT_BATCH_ROWS = 512


def _bench_backends(n: int, repeats: int) -> dict:
    """Per-backend kernel throughput on the shared ABI.

    One row per available backend and ABI kernel, measured on identical
    pre-drawn inputs (randomness is host-side by the ABI contract, so
    the kernels are pure functions and the comparison is exact).  The
    ``fwht`` timing transforms the same buffer repeatedly — the FWHT is
    linear, so growing magnitudes leave the flop count (and float64
    range, for any sane repeat count) untouched.
    """
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    pairs = HashPairs(params.k, params.m, seed=BENCH_SEED)
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.integers(0, 1 << 20, size=n).astype(np.uint64)
    rows = rng.integers(0, params.k, size=n)
    cols = rng.integers(0, params.m, size=n)
    flips = rng.random(n) < params.flip_probability
    fwht_data = rng.normal(size=(FWHT_BATCH_ROWS, BENCH_M))
    kernels: Dict[str, dict] = {name: {} for name in BACKEND_KERNELS}
    # One row per registered-and-importable backend (not just the two
    # built-ins), so a register_backend() extension shows up in the
    # comparison exactly as the README promises.
    for backend_name in sorted(available_backends()):
        if not backend_available(backend_name):
            continue
        backend = resolve_backend(backend_name)

        def run_fused():
            out = np.zeros((params.k, params.m), dtype=np.int64)
            # Chunked exactly like encode_reports_into's production loop
            # (DEFAULT_CHUNK_SIZE per kernel call), so each backend's row
            # measures the kernel variant sessions actually execute —
            # not a one-shot giant call no library entry point makes.
            for start in range(0, n, DEFAULT_CHUNK_SIZE):
                sl = slice(start, start + DEFAULT_CHUNK_SIZE)
                backend.fused_encode_accumulate(
                    pairs._bucket_coeffs, pairs._sign_coeffs, values[sl],
                    rows[sl], cols[sl], flips[sl], params.m, out,
                )
            return out

        fused = _best_of(run_fused, repeats)
        hashing = _best_of(
            lambda: backend.polyval_mersenne_rows(pairs._bucket_coeffs, rows, values),
            repeats,
        )
        fwht = _best_of(lambda: backend.fwht_batch_inplace(fwht_data), repeats)
        kernels["fused_encode"][backend_name] = {
            "seconds": fused,
            "per_sec": _rate(n, fused),
        }
        kernels["hashing"][backend_name] = {
            "seconds": hashing,
            "per_sec": _rate(n, hashing),
        }
        kernels["fwht"][backend_name] = {
            "seconds": fwht,
            "per_sec": _rate(fwht_data.size, fwht),
        }
    return {
        "n": n,
        "active": get_backend().name,
        "numba_available": 1.0 if backend_available("numba") else 0.0,
        "kernels": kernels,
    }


def _bench_distributed(n: int, repeats: int, shards: int = DISTRIBUTED_SHARDS) -> Dict[str, float]:
    """Sharded ingest + merge-tree cost versus the single aggregator.

    The single-aggregator row times a plain whole-population ``collect``
    (what one process ingesting everything actually runs — no planner
    work); the sharded row times each shard aggregator separately on its
    pre-planned partition — production shards ingest concurrently, so
    capacity is the population over the *slowest* shard.  Separately
    (untimed), the tree-merged partials must reproduce the
    single-aggregator ``collect_sharded`` run of the same plan byte for
    byte — the ``identical`` flag CI asserts.
    """
    from repro.distributed import ShardPlanner, merge_tree

    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    coordinator = JoinSession(params, seed=BENCH_SEED)
    values = np.random.default_rng(BENCH_SEED).integers(0, 1 << 16, size=n)
    planner = ShardPlanner(shards, strategy="hash")
    splits = planner.split(values)
    shard_seeds = planner.shard_seeds(BENCH_SEED)

    def run_single():
        session = JoinSession(params, pairs=coordinator.pairs)
        session.collect("A", values, seed=BENCH_SEED)
        return session

    single_seconds = _best_of(run_single, repeats)
    reference = JoinSession(params, pairs=coordinator.pairs)
    reference.collect_sharded("A", values, num_shards=shards, seed=BENCH_SEED)
    single_raw = reference._streams["A"].raw

    def run_shards():
        times, partials = [], []
        for shard_values, shard_seed in zip(splits, shard_seeds):
            shard = coordinator.spawn_shard()
            start = time.perf_counter()
            shard.collect("A", shard_values, seed=shard_seed)
            times.append(time.perf_counter() - start)
            partials.append(shard.to_partial())
        return times, partials

    run_shards()  # warmup
    # Best-of per statistic, independently: one stalled shard in the
    # best-total repeat must not deflate the capacity number (the same
    # noise-floor treatment _best_of applies to scalar timings).  The
    # partials themselves are plan-deterministic, identical every repeat.
    best_total, best_max, partials = float("inf"), float("inf"), None
    for _ in range(repeats):
        times, run_partials = run_shards()
        best_total = min(best_total, sum(times))
        best_max = min(best_max, max(times))
        partials = run_partials
    # Time the reduction alone: copies are staged untimed and consumed
    # with copy=False, so merge_seconds is the pure-adds cost aggregators
    # actually pay, not memcpy of the inputs.
    merge_seconds = float("inf")
    for i in range(repeats + 1):  # first pass is the warmup
        staged = [p.copy() for p in partials]
        start = time.perf_counter()
        merge_tree(staged, copy=False)
        elapsed = time.perf_counter() - start
        if i > 0:
            merge_seconds = min(merge_seconds, elapsed)

    merged_session = JoinSession(params, pairs=coordinator.pairs)
    merged_session.merge(merge_tree(partials))
    identical = np.array_equal(merged_session._streams["A"].raw, single_raw)
    payload_bytes = len(json.dumps(partials[0].to_dict()))
    single_rate = _rate(n, single_seconds)
    sharded_rate = _rate(n, best_max)
    return {
        "n": n,
        "shards": shards,
        "single_seconds": single_seconds,
        "single_clients_per_sec": single_rate,
        "shard_seconds_total": best_total,
        "shard_seconds_max": best_max,
        "sharded_clients_per_sec": sharded_rate,
        "ingest_speedup": sharded_rate / single_rate if single_rate > 0 else float("inf"),
        "merge_seconds": merge_seconds,
        "partial_payload_bytes": payload_bytes,
        "identical": 1.0 if identical else 0.0,
    }


def _bench_serialize(n: int, repeats: int) -> Dict[str, float]:
    params = SketchParams(BENCH_K, BENCH_M, BENCH_EPSILON)
    session = JoinSession(params, seed=BENCH_SEED)
    rng = np.random.default_rng(BENCH_SEED)
    session.collect("A", rng.integers(0, 1 << 16, size=n))
    session.collect("B", rng.integers(0, 1 << 16, size=n))

    def roundtrip_packed():
        return JoinSession.from_dict(json.loads(json.dumps(session.to_dict())))

    def legacy_payload() -> dict:
        # Rewrite the packed arrays as the pre-PR nested lists.
        payload = session.to_dict()
        for entry in payload["streams"].values():
            entry["raw"] = _decode_for_bench(entry["raw"]).tolist()
        return payload

    legacy = legacy_payload()

    def roundtrip_legacy():
        return JoinSession.from_dict(json.loads(json.dumps(legacy)))

    packed_seconds = _best_of(roundtrip_packed, repeats)
    legacy_seconds = _best_of(roundtrip_legacy, repeats)
    return {
        "n": n,
        "packed_roundtrip_seconds": packed_seconds,
        "legacy_roundtrip_seconds": legacy_seconds,
        "packed_payload_bytes": len(json.dumps(session.to_dict())),
        "legacy_payload_bytes": len(json.dumps(legacy)),
    }


def _decode_for_bench(raw_entry) -> np.ndarray:
    from repro.serialization import decode_array

    return decode_array(raw_entry, np.int64)


def _bench_service(quick: bool) -> dict:
    """The online-service load generator (lives in :mod:`bench_service`).

    Imported lazily so the suite module stays importable without the
    benchmarks directory on ``sys.path`` being a hard requirement at
    import time (``run_perf.py`` inserts it before calling us).
    """
    from bench_service import run_service_bench

    return run_service_bench(quick=quick)


# ----------------------------------------------------------------------
# Runner + schema
# ----------------------------------------------------------------------
def run_suite(quick: bool = False, backends_n: int = None) -> dict:
    """Run every section; returns the JSON-compatible payload.

    ``backends_n`` overrides the population of the ``backends`` section
    only — CI's numba leg passes ``FULL_N`` alongside ``quick=True`` so
    the compiled-vs-reference comparison (and its speedup floor) is
    measured at the headline n = 1M even in the fast smoke run, where the
    other sections stay small.
    """
    n = QUICK_N if quick else FULL_N
    repeats = 1 if quick else 9
    query_n = min(n, 200_000)
    sweep_n = SWEEP_QUICK_N if quick else SWEEP_FULL_N
    sweep_repeats = 1 if quick else 3
    if backends_n is None:
        backends_n, backends_repeats = n, repeats
    else:
        backends_repeats = max(repeats, 3)
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "params": {"k": BENCH_K, "m": BENCH_M, "epsilon": BENCH_EPSILON},
        "sections": {
            "encode": _bench_encode(n, repeats),
            "aggregate": _bench_aggregate(n, repeats),
            "end_to_end": _bench_end_to_end(n, repeats),
            "estimate": _bench_estimate(query_n, repeats),
            "serialize": _bench_serialize(query_n, repeats),
            "sweep": _bench_sweep(sweep_n, sweep_repeats),
            "backends": _bench_backends(backends_n, backends_repeats),
            "distributed": _bench_distributed(n, repeats),
            "service": _bench_service(quick),
        },
    }


_SECTION_KEYS: Dict[str, Tuple[str, ...]] = {
    "encode": (
        "n",
        "batched_seconds",
        "batched_clients_per_sec",
        "fused_seconds",
        "fused_clients_per_sec",
    ),
    "aggregate": (
        "n",
        "add_at_seconds",
        "add_at_reports_per_sec",
        "bincount_seconds",
        "bincount_reports_per_sec",
        "speedup",
    ),
    "end_to_end": (
        "n",
        "baseline_seconds",
        "baseline_clients_per_sec",
        "fused_seconds",
        "fused_clients_per_sec",
        "speedup",
    ),
    "estimate": ("n", "estimate_seconds", "estimate_cached_seconds"),
    "serialize": (
        "n",
        "packed_roundtrip_seconds",
        "legacy_roundtrip_seconds",
        "packed_payload_bytes",
        "legacy_payload_bytes",
    ),
    "sweep": (
        "n",
        "datasets",
        "methods",
        "epsilons",
        "trials",
        "units",
        "serial_seconds",
        "exact_seconds",
        "grouped_seconds",
        "speedup",
        "exact_speedup",
        "exact_identical",
        "parallel_workers",
        "parallel_seconds",
        "parallel_identical",
    ),
    "distributed": (
        "n",
        "shards",
        "single_seconds",
        "single_clients_per_sec",
        "shard_seconds_total",
        "shard_seconds_max",
        "sharded_clients_per_sec",
        "ingest_speedup",
        "merge_seconds",
        "partial_payload_bytes",
        "identical",
    ),
    "service": (
        "n",
        "batch_reports",
        "batches",
        "connections",
        "shards",
        "throttled",
        "ingest_seconds",
        "ingest_reports_per_sec",
        "ingest_p50_ms",
        "ingest_p99_ms",
        "publish_seconds",
        "snapshot_wal_records",
        "queries",
        "query_p50_ms",
        "query_p99_ms",
        "wal_bytes",
        "quorum_n",
        "quorum_replicas",
        "quorum_throttled",
        "quorum_seconds",
        "quorum_ingest_reports_per_sec",
        "quorum_ingest_p50_ms",
        "quorum_ingest_p99_ms",
        "quorum_digest_match",
        "window_n",
        "window_epoch_interval",
        "window_epochs",
        "window_query_epochs",
        "window_throttled",
        "window_ingest_seconds",
        "window_ingest_reports_per_sec",
        "window_closed_epochs",
        "window_queries",
        "window_query_p50_ms",
        "window_query_p99_ms",
        "window_estimates_per_sec",
    ),
}


def _validate_backends_section(section) -> None:
    """Schema check of the v3 ``backends`` section."""
    if not isinstance(section, dict):
        raise ValueError("missing section 'backends'")
    for key in ("n", "numba_available"):
        value = section.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"backends key {key!r} must be a number, got {value!r}")
    if not isinstance(section.get("active"), str):
        raise ValueError("backends key 'active' must be a string")
    numba_required = section["numba_available"] == 1.0
    kernels = section.get("kernels")
    if not isinstance(kernels, dict):
        raise ValueError("backends section must carry a 'kernels' object")
    for kernel in BACKEND_KERNELS:
        entry = kernels.get(kernel)
        if not isinstance(entry, dict) or "numpy" not in entry:
            raise ValueError(f"backends kernel {kernel!r} must carry a numpy row")
        if numba_required and "numba" not in entry:
            raise ValueError(
                f"backends kernel {kernel!r} lacks a numba row although "
                f"numba_available is 1"
            )
        for backend_name, row in entry.items():
            if not isinstance(row, dict):
                raise ValueError(
                    f"backends kernel {kernel!r} row {backend_name!r} must be an object"
                )
            for key in ("seconds", "per_sec"):
                value = row.get(key)
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or value < 0
                ):
                    raise ValueError(
                        f"backends kernel {kernel!r} row {backend_name!r} key "
                        f"{key!r} must be a non-negative number, got {value!r}"
                    )


def validate_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the BENCH_perf schema."""
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version must be {SCHEMA_VERSION}, got {payload.get('schema_version')!r}"
        )
    if payload.get("mode") not in ("quick", "full"):
        raise ValueError(f"mode must be 'quick' or 'full', got {payload.get('mode')!r}")
    params = payload.get("params")
    if not isinstance(params, dict) or not {"k", "m", "epsilon"} <= set(params):
        raise ValueError("params must carry k, m and epsilon")
    sections = payload.get("sections")
    if not isinstance(sections, dict):
        raise ValueError("sections must be a JSON object")
    for name, keys in _SECTION_KEYS.items():
        section = sections.get(name)
        if not isinstance(section, dict):
            raise ValueError(f"missing section {name!r}")
        for key in keys:
            value = section.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"section {name!r} key {key!r} must be a number, got {value!r}")
            if value < 0:
                raise ValueError(f"section {name!r} key {key!r} must be non-negative")
    _validate_backends_section(sections.get("backends"))
