"""CLI entry point of the perf suite — emits / validates ``BENCH_perf.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py            # full, 1M clients
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick    # CI smoke, 20k
    PYTHONPATH=src python benchmarks/perf/run_perf.py --validate BENCH_perf.json

``--quick`` runs every section at a small population so CI finishes in
seconds; the checked-in ``BENCH_perf.json`` at the repo root is produced by
a full run and records the pre-PR baseline next to the fused-path numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_suite import FULL_N, run_suite, validate_payload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small-n smoke mode")
    parser.add_argument(
        "--full-backends",
        action="store_true",
        help="measure the backends section at the full n = 1M even with "
        "--quick (CI's numba leg uses this so the compiled-vs-reference "
        "floor is enforced at the headline population)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "output path (default: repo-root BENCH_perf.json for full runs, "
            "bench_perf_quick.json in the working directory for --quick, so a "
            "smoke run never clobbers the recorded full-run trajectory)"
        ),
    )
    parser.add_argument(
        "--validate",
        type=Path,
        default=None,
        metavar="FILE",
        help="validate an existing payload instead of benchmarking",
    )
    parser.add_argument(
        "--require-full",
        action="store_true",
        help="with --validate: additionally demand a full-mode payload "
        "(guards the checked-in trajectory file against quick-mode clobbers)",
    )
    parser.add_argument(
        "--min-sweep-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --validate: fail unless the sweep section's engine "
        "speedup over the serial harness is at least X (the CI floor) and "
        "its parallel run was bit-identical to serial",
    )
    parser.add_argument(
        "--min-numba-encode-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --validate: when the payload carries numba backend rows, "
        "fail unless the numba fused-encode kernel reaches at least X times "
        "the numpy kernel's throughput (vacuous when numba was unavailable "
        "at measurement time)",
    )
    parser.add_argument(
        "--require-numba",
        action="store_true",
        help="with --validate: fail unless the payload actually carries "
        "numba backend rows (numba_available == 1) — guards CI's numba leg "
        "against a broken numba install silently voiding the floor",
    )
    parser.add_argument(
        "--min-sharded-ingest-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --validate: fail unless the distributed section's "
        "parallel ingest capacity reaches at least X times the "
        "single-aggregator throughput and the merged accumulators were "
        "byte-identical to the single-aggregator run",
    )
    parser.add_argument(
        "--min-service-ingest",
        type=float,
        default=None,
        metavar="X",
        help="with --validate: fail unless the service section sustained at "
        "least X acknowledged reports/sec through the online HTTP server "
        "(every report WAL-durable before its ack)",
    )
    parser.add_argument(
        "--min-quorum-ingest",
        type=float,
        default=None,
        metavar="X",
        help="with --validate: fail unless the replicated (quorum-ack) leg "
        "sustained at least X acknowledged reports/sec — each ack held for "
        "the standby's WAL apply — and both nodes published byte-identical "
        "snapshots",
    )
    parser.add_argument(
        "--min-window-estimate",
        type=float,
        default=None,
        metavar="X",
        help="with --validate: fail unless the windowed (temporal) leg "
        "sustained at least X sliding-window estimates/sec — each query "
        "tree-merging the newest epoch partials and running the full "
        "estimate pipeline",
    )
    args = parser.parse_args(argv)

    # Flags are mode-specific; a CI edit that drops --validate must fail
    # loudly instead of silently enforcing nothing.
    if args.validate is None:
        for flag, given in (
            ("--require-full", args.require_full),
            ("--min-sweep-speedup", args.min_sweep_speedup is not None),
            ("--min-numba-encode-speedup", args.min_numba_encode_speedup is not None),
            ("--require-numba", args.require_numba),
            (
                "--min-sharded-ingest-speedup",
                args.min_sharded_ingest_speedup is not None,
            ),
            ("--min-service-ingest", args.min_service_ingest is not None),
            ("--min-quorum-ingest", args.min_quorum_ingest is not None),
            ("--min-window-estimate", args.min_window_estimate is not None),
        ):
            if given:
                parser.error(f"{flag} only applies with --validate")
    elif args.full_backends or args.quick:
        parser.error("--quick/--full-backends only apply when benchmarking")

    if args.validate is not None:
        payload = json.loads(args.validate.read_text())
        validate_payload(payload)
        if args.require_full and payload["mode"] != "full":
            print(f"[fail] {args.validate} holds a {payload['mode']!r}-mode payload, expected 'full'")
            return 1
        if args.min_sweep_speedup is not None:
            sweep = payload["sections"]["sweep"]
            if sweep["speedup"] < args.min_sweep_speedup:
                print(
                    f"[fail] sweep speedup {sweep['speedup']:.2f}x regressed below "
                    f"the {args.min_sweep_speedup:.2f}x floor"
                )
                return 1
            # The default (exact) trial axis is a bit-identical re-routing
            # of the serial harness, so its throughput must stay at parity.
            # 0.7x leaves room for single-core timer noise while still
            # catching a real regression of the default figure path.
            if sweep["exact_speedup"] < 0.7:
                print(
                    f"[fail] exact-mode sweep at {sweep['exact_speedup']:.2f}x the "
                    f"serial harness — the default trial axis regressed"
                )
                return 1
            if sweep["parallel_identical"] != 1.0:
                print("[fail] parallel sweep results were not bit-identical to serial")
                return 1
            if sweep["exact_identical"] != 1.0:
                print("[fail] exact-mode sweep diverged from the serial harness")
                return 1
        if args.require_numba:
            backends = payload["sections"]["backends"]
            if backends["numba_available"] != 1.0:
                print(
                    f"[fail] {args.validate} carries no numba rows "
                    f"(numba_available={backends['numba_available']}) but "
                    f"--require-numba was given — the numba install is broken "
                    f"or missing, so the compiled floor would pass vacuously"
                )
                return 1
        if args.min_numba_encode_speedup is not None:
            backends = payload["sections"]["backends"]
            fused = backends["kernels"]["fused_encode"]
            if backends["numba_available"] == 1.0:
                speedup = fused["numba"]["per_sec"] / fused["numpy"]["per_sec"]
                if speedup < args.min_numba_encode_speedup:
                    print(
                        f"[fail] numba fused-encode at {speedup:.2f}x numpy — "
                        f"below the {args.min_numba_encode_speedup:.2f}x floor"
                    )
                    return 1
                print(f"[ok] numba fused-encode at {speedup:.2f}x numpy")
            else:
                print("[ok] numba rows absent (numba unavailable); floor not applicable")
        if args.min_sharded_ingest_speedup is not None:
            distributed = payload["sections"]["distributed"]
            if distributed["identical"] != 1.0:
                print(
                    "[fail] sharded ingest diverged: merged partials were not "
                    "byte-identical to the single-aggregator run"
                )
                return 1
            if distributed["ingest_speedup"] < args.min_sharded_ingest_speedup:
                print(
                    f"[fail] sharded ingest at "
                    f"{distributed['ingest_speedup']:.2f}x the single "
                    f"aggregator — below the "
                    f"{args.min_sharded_ingest_speedup:.2f}x floor"
                )
                return 1
            print(
                f"[ok] sharded ingest ({distributed['shards']:.0f} shards) at "
                f"{distributed['ingest_speedup']:.2f}x single-aggregator "
                f"throughput, merge {distributed['merge_seconds'] * 1e3:.1f}ms, "
                f"byte-identical"
            )
        if args.min_service_ingest is not None:
            service = payload["sections"]["service"]
            if service["ingest_reports_per_sec"] < args.min_service_ingest:
                print(
                    f"[fail] service ingest at "
                    f"{service['ingest_reports_per_sec']:,.0f} reports/s — "
                    f"below the {args.min_service_ingest:,.0f}/s floor"
                )
                return 1
            print(
                f"[ok] service ingest at "
                f"{service['ingest_reports_per_sec']:,.0f} reports/s "
                f"(ack p50 {service['ingest_p50_ms']:.2f}ms / p99 "
                f"{service['ingest_p99_ms']:.2f}ms; query p50 "
                f"{service['query_p50_ms']:.2f}ms / p99 "
                f"{service['query_p99_ms']:.2f}ms)"
            )
        if args.min_quorum_ingest is not None:
            service = payload["sections"]["service"]
            if service["quorum_digest_match"] != 1.0:
                print(
                    "[fail] replicated leg diverged: primary and standby "
                    "published different snapshot digests"
                )
                return 1
            if service["quorum_ingest_reports_per_sec"] < args.min_quorum_ingest:
                print(
                    f"[fail] quorum-ack ingest at "
                    f"{service['quorum_ingest_reports_per_sec']:,.0f} reports/s "
                    f"— below the {args.min_quorum_ingest:,.0f}/s floor"
                )
                return 1
            print(
                f"[ok] quorum-ack ingest at "
                f"{service['quorum_ingest_reports_per_sec']:,.0f} reports/s "
                f"with {service['quorum_replicas']:.0f} standby (ack p50 "
                f"{service['quorum_ingest_p50_ms']:.2f}ms / p99 "
                f"{service['quorum_ingest_p99_ms']:.2f}ms), byte-identical "
                f"snapshots"
            )
        if args.min_window_estimate is not None:
            service = payload["sections"]["service"]
            if service["window_estimates_per_sec"] < args.min_window_estimate:
                print(
                    f"[fail] windowed estimates at "
                    f"{service['window_estimates_per_sec']:,.0f}/s — below the "
                    f"{args.min_window_estimate:,.0f}/s floor"
                )
                return 1
            print(
                f"[ok] windowed estimates at "
                f"{service['window_estimates_per_sec']:,.0f}/s over a "
                f"{service['window_query_epochs']:.0f}-epoch window "
                f"(p50 {service['window_query_p50_ms']:.2f}ms / p99 "
                f"{service['window_query_p99_ms']:.2f}ms; temporal ingest "
                f"{service['window_ingest_reports_per_sec']:,.0f} reports/s)"
            )
        print(f"[ok] {args.validate} matches BENCH_perf schema v{payload['schema_version']}")
        return 0

    if args.out is None:
        args.out = (
            Path.cwd() / "bench_perf_quick.json"
            if args.quick
            else Path(__file__).resolve().parents[2] / "BENCH_perf.json"
        )

    payload = run_suite(
        quick=args.quick, backends_n=FULL_N if args.full_backends else None
    )
    validate_payload(payload)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    end_to_end = payload["sections"]["end_to_end"]
    print(f"[bench] mode={payload['mode']} n={end_to_end['n']}")
    print(
        f"[bench] end-to-end encode->aggregate: baseline "
        f"{end_to_end['baseline_clients_per_sec']:,.0f} clients/s, fused "
        f"{end_to_end['fused_clients_per_sec']:,.0f} clients/s "
        f"({end_to_end['speedup']:.2f}x)"
    )
    sweep = payload["sections"]["sweep"]
    print(
        f"[bench] sweep grid ({sweep['methods']:.0f} methods x "
        f"{sweep['epsilons']:.0f} epsilons x {sweep['trials']:.0f} trials, "
        f"n={sweep['n']:.0f}): serial harness {sweep['serial_seconds']:.3f}s, "
        f"engine grouped {sweep['grouped_seconds']:.3f}s "
        f"({sweep['speedup']:.2f}x), exact {sweep['exact_seconds']:.3f}s "
        f"({sweep['exact_speedup']:.2f}x, identical="
        f"{bool(sweep['exact_identical'])}), parallel identical="
        f"{bool(sweep['parallel_identical'])}"
    )
    backends = payload["sections"]["backends"]
    fused = backends["kernels"]["fused_encode"]
    rows = ", ".join(
        f"{name} {row['per_sec']:,.0f}/s" for name, row in fused.items()
    )
    print(
        f"[bench] backends (active={backends['active']}, "
        f"numba_available={bool(backends['numba_available'])}): "
        f"fused encode {rows}"
    )
    distributed = payload["sections"]["distributed"]
    print(
        f"[bench] distributed ingest ({distributed['shards']:.0f} shards, "
        f"n={distributed['n']:.0f}): single "
        f"{distributed['single_clients_per_sec']:,.0f} clients/s, sharded "
        f"capacity {distributed['sharded_clients_per_sec']:,.0f} clients/s "
        f"({distributed['ingest_speedup']:.2f}x), merge "
        f"{distributed['merge_seconds'] * 1e3:.1f}ms, identical="
        f"{bool(distributed['identical'])}"
    )
    service = payload["sections"]["service"]
    print(
        f"[bench] service (n={service['n']:.0f}, "
        f"{service['connections']:.0f} connections): ingest "
        f"{service['ingest_reports_per_sec']:,.0f} reports/s "
        f"(ack p50 {service['ingest_p50_ms']:.2f}ms / p99 "
        f"{service['ingest_p99_ms']:.2f}ms), query p50 "
        f"{service['query_p50_ms']:.2f}ms / p99 {service['query_p99_ms']:.2f}ms"
    )
    print(
        f"[bench] quorum-ack ingest (1 standby, n={service['quorum_n']:.0f}): "
        f"{service['quorum_ingest_reports_per_sec']:,.0f} reports/s "
        f"(ack p50 {service['quorum_ingest_p50_ms']:.2f}ms / p99 "
        f"{service['quorum_ingest_p99_ms']:.2f}ms), digest match="
        f"{bool(service['quorum_digest_match'])}"
    )
    print(
        f"[bench] windowed estimates (window={service['window_query_epochs']:.0f} "
        f"of {service['window_epochs']:.0f} epochs, n={service['window_n']:.0f}): "
        f"{service['window_estimates_per_sec']:,.0f}/s "
        f"(p50 {service['window_query_p50_ms']:.2f}ms / p99 "
        f"{service['window_query_p99_ms']:.2f}ms), temporal ingest "
        f"{service['window_ingest_reports_per_sec']:,.0f} reports/s"
    )
    print(f"[bench] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
