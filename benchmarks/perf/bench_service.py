"""Load generator for the online aggregation service (``repro.service``).

Drives the real asyncio HTTP server end to end — socket, HTTP/1.1
parsing, admission control, WAL append + fsync, shard fold — with a
handful of keep-alive client connections POSTing batched reports, then
measures query latency against the published snapshot.  The numbers land
in the ``service`` section of ``BENCH_perf.json`` (schema v6):

* ``ingest_reports_per_sec`` — sustained acknowledged-report throughput
  over the whole load phase (every report durably in the WAL before its
  ack), the number CI's ``--min-service-ingest`` floor reads;
* ``ingest_p50_ms`` / ``ingest_p99_ms`` — per-batch ack latency;
* ``query_p50_ms`` / ``query_p99_ms`` — ``GET /v1/estimate`` latency
  against the published snapshot (join-size queries);
* ``throttled`` — 429 responses absorbed by the generator's retry loop
  (0 under the default shape: each connection awaits its ack before the
  next batch, so at most ``connections`` batches are ever in flight);
* ``quorum_ingest_reports_per_sec`` (schema v6) — the same acknowledged
  throughput through a primary/standby pair in ``ack_mode=quorum``:
  every ack now additionally waits for the standby to apply the shipped
  WAL frame over HTTP, so this is the replicated durability price.  CI's
  ``--min-quorum-ingest`` floor reads it; ``quorum_digest_match``
  certifies the two nodes published byte-identical snapshots at the end;
* ``window_estimates_per_sec`` (schema v7) — sustained
  ``GET /v1/estimate?window=W`` throughput against a service running
  with ``epoch_interval`` set, each query tree-merging the newest
  epoch partials and running the full estimate pipeline.  CI's
  ``--min-window-estimate`` floor reads it;
  ``window_ingest_reports_per_sec`` is acknowledged ingest with
  temporal epoch folding enabled (the ring-maintenance price).

Standalone usage::

    PYTHONPATH=src python benchmarks/perf/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service import (
    AggregationService,
    HttpReplica,
    ReplicatedService,
    ServerConfig,
    ServiceConfig,
    ServiceServer,
)

__all__ = ["run_service_bench", "main"]

#: Total acknowledged reports of the load phase.
FULL_REPORTS = 1_000_000
QUICK_REPORTS = 100_000

#: Total acknowledged reports of the replicated (quorum-ack) phase.  Each
#: ack pays a synchronous HTTP ship to the standby, so the leg is sized
#: down to keep the suite's wall-clock bounded without losing the rate.
FULL_REPLICATED = 250_000
QUICK_REPLICATED = 50_000

#: Reports per ``POST /v1/report`` batch (~12 KiB of JSON).
BATCH_REPORTS = 2048

#: Concurrent keep-alive client connections.
CONNECTIONS = 4

#: ``GET /v1/estimate`` samples of the query-latency phase.
FULL_QUERIES = 1_000
QUICK_QUERIES = 200

#: Total acknowledged reports of the windowed (temporal) phase, and the
#: ``GET /v1/estimate?window=W`` samples timed against the ring.
FULL_WINDOWED = 250_000
QUICK_WINDOWED = 50_000
FULL_WINDOW_QUERIES = 200
QUICK_WINDOW_QUERIES = 50

#: Temporal shape of the windowed leg: one epoch per 8 WAL records, an
#: 8-epoch ring, and a 4-epoch sliding window per query.
WINDOW_EPOCH_INTERVAL = 8
WINDOW_EPOCHS = 8
WINDOW_QUERY = 4

SERVICE_SHARDS = 4
SERVICE_SEED = 20240101


class _Client:
    """Minimal keep-alive HTTP/1.1 client over asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def request(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> Tuple[int, dict, Dict[str, str]]:
        payload = b"" if body is None else body
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {self._host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("ascii")
        self._writer.write(head + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else {}), headers

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def _build_batches(total_reports: int) -> List[bytes]:
    """Pre-serialised report bodies, alternating streams A and B."""
    rng = np.random.default_rng(SERVICE_SEED)
    batches: List[bytes] = []
    remaining = total_reports
    index = 0
    while remaining > 0:
        size = min(BATCH_REPORTS, remaining)
        values = rng.integers(0, 1 << 16, size=size)
        body = {
            "tenant": "bench",
            "stream": "A" if index % 2 == 0 else "B",
            "values": values.tolist(),
        }
        batches.append(json.dumps(body).encode("ascii"))
        remaining -= size
        index += 1
    return batches


async def _drive(
    address: Tuple[str, int],
    batches: List[bytes],
    latencies_ms: List[float],
    counters: Dict[str, int],
) -> None:
    """One connection: POST its batch share, retrying 429s after Retry-After."""
    client = _Client(*address)
    await client.connect()
    try:
        for body in batches:
            while True:
                start = time.perf_counter()
                status, _, headers = await client.request(
                    "POST", "/v1/report", body
                )
                elapsed_ms = (time.perf_counter() - start) * 1e3
                if status == 429:
                    counters["throttled"] += 1
                    await asyncio.sleep(float(headers.get("retry-after", "1")))
                    continue
                if status != 200:
                    raise RuntimeError(f"ingest rejected with HTTP {status}")
                latencies_ms.append(elapsed_ms)
                break
    finally:
        await client.close()


async def _run(total_reports: int, queries: int, data_dir: Path) -> dict:
    service = AggregationService(
        ServiceConfig(
            data_dir=data_dir,
            num_shards=SERVICE_SHARDS,
            seed=SERVICE_SEED,
        )
    )
    server = ServiceServer(
        service,
        ServerConfig(
            port=0,
            queue_limit=256,
            tenant_queue_limit=256,
            # Keep the watchdog out of the timed window: publishes are
            # measured explicitly below, not triggered mid-load.
            publish_threshold=1_000_000,
        ),
    )
    address = await server.start()
    try:
        batches = _build_batches(total_reports)
        shares: List[List[bytes]] = [[] for _ in range(CONNECTIONS)]
        for index, body in enumerate(batches):
            shares[index % CONNECTIONS].append(body)

        ingest_ms: List[float] = []
        counters = {"throttled": 0}
        load_start = time.perf_counter()
        await asyncio.gather(
            *(_drive(address, share, ingest_ms, counters) for share in shares)
        )
        ingest_seconds = time.perf_counter() - load_start

        client = _Client(*address)
        await client.connect()
        try:
            publish_start = time.perf_counter()
            status, snapshot, _ = await client.request("POST", "/v1/publish")
            publish_seconds = time.perf_counter() - publish_start
            if status != 200:
                raise RuntimeError(f"publish failed with HTTP {status}")
            target = "/v1/estimate?tenant=bench&kind=join&streams=A,B"
            query_ms: List[float] = []
            for _ in range(queries):
                start = time.perf_counter()
                status, _, _ = await client.request("GET", target)
                query_ms.append((time.perf_counter() - start) * 1e3)
                if status != 200:
                    raise RuntimeError(f"query failed with HTTP {status}")
        finally:
            await client.close()
        wal_bytes = (data_dir / "wal.log").stat().st_size
    finally:
        await server.shutdown()

    ingest = np.asarray(ingest_ms)
    query = np.asarray(query_ms)
    return {
        "n": total_reports,
        "batch_reports": BATCH_REPORTS,
        "batches": len(batches),
        "connections": CONNECTIONS,
        "shards": SERVICE_SHARDS,
        "throttled": counters["throttled"],
        "ingest_seconds": ingest_seconds,
        "ingest_reports_per_sec": (
            total_reports / ingest_seconds if ingest_seconds > 0 else float("inf")
        ),
        "ingest_p50_ms": float(np.percentile(ingest, 50)),
        "ingest_p99_ms": float(np.percentile(ingest, 99)),
        "publish_seconds": publish_seconds,
        "snapshot_wal_records": snapshot.get("wal_records", 0),
        "queries": len(query_ms),
        "query_p50_ms": float(np.percentile(query, 50)),
        "query_p99_ms": float(np.percentile(query, 99)),
        "wal_bytes": wal_bytes,
    }


async def _run_replicated(total_reports: int, data_dir: Path) -> dict:
    """Quorum-ack load: primary + one HTTP standby, acks held for both.

    The standby runs as a second real HTTP server; the primary ships each
    appended WAL frame to it (``POST /v1/replicate``) before
    acknowledging, so every measured ack covers two fsyncs and one
    loopback round-trip — the replicated durability price the README
    quotes.  At the end both nodes publish and the digests must match.
    """
    standby = ReplicatedService(
        ServiceConfig(
            data_dir=data_dir / "standby",
            num_shards=SERVICE_SHARDS,
            seed=SERVICE_SEED,
        ),
        role="standby",
    )
    standby_server = ServiceServer(
        standby,
        ServerConfig(port=0, queue_limit=256, publish_threshold=1_000_000),
    )
    standby_address = await standby_server.start()
    primary_server = None
    try:
        primary = ReplicatedService(
            ServiceConfig(
                data_dir=data_dir / "primary",
                num_shards=SERVICE_SHARDS,
                seed=SERVICE_SEED,
            ),
            role="primary",
            replicas=[HttpReplica(*standby_address)],
            ack_mode="quorum",
        )
        primary_server = ServiceServer(
            primary,
            ServerConfig(
                port=0,
                queue_limit=256,
                tenant_queue_limit=256,
                publish_threshold=1_000_000,
            ),
        )
        address = await primary_server.start()

        batches = _build_batches(total_reports)
        shares: List[List[bytes]] = [[] for _ in range(CONNECTIONS)]
        for index, body in enumerate(batches):
            shares[index % CONNECTIONS].append(body)
        ingest_ms: List[float] = []
        counters = {"throttled": 0}
        load_start = time.perf_counter()
        await asyncio.gather(
            *(_drive(address, share, ingest_ms, counters) for share in shares)
        )
        ingest_seconds = time.perf_counter() - load_start

        digests = []
        for node in (address, standby_address):
            client = _Client(*node)
            await client.connect()
            try:
                status, snapshot, _ = await client.request("POST", "/v1/publish")
                if status != 200:
                    raise RuntimeError(f"publish failed with HTTP {status}")
                digests.append(snapshot.get("digest"))
            finally:
                await client.close()
    finally:
        if primary_server is not None:
            await primary_server.shutdown()
        await standby_server.shutdown()

    ingest = np.asarray(ingest_ms)
    return {
        "quorum_n": total_reports,
        "quorum_replicas": 1,
        "quorum_throttled": counters["throttled"],
        "quorum_seconds": ingest_seconds,
        "quorum_ingest_reports_per_sec": (
            total_reports / ingest_seconds if ingest_seconds > 0 else float("inf")
        ),
        "quorum_ingest_p50_ms": float(np.percentile(ingest, 50)),
        "quorum_ingest_p99_ms": float(np.percentile(ingest, 99)),
        "quorum_digest_match": (
            1.0 if digests[0] is not None and digests[0] == digests[1] else 0.0
        ),
    }


async def _run_windowed(total_reports: int, queries: int, data_dir: Path) -> dict:
    """Temporal leg: epoch-rolling ingest, then sliding-window queries.

    The service runs with ``epoch_interval`` set, so every fold also
    lands in the epoch ring; each timed query then tree-merges the
    newest ``WINDOW_QUERY`` epoch partials and runs the full estimate
    pipeline (FWHT + Eq. (5)) on the merged accumulators — no publish
    required.  ``window_estimates_per_sec`` is the number CI's
    ``--min-window-estimate`` floor reads.
    """
    service = AggregationService(
        ServiceConfig(
            data_dir=data_dir,
            num_shards=SERVICE_SHARDS,
            seed=SERVICE_SEED,
            epoch_interval=WINDOW_EPOCH_INTERVAL,
            window_epochs=WINDOW_EPOCHS,
        )
    )
    server = ServiceServer(
        service,
        ServerConfig(
            port=0,
            queue_limit=256,
            tenant_queue_limit=256,
            publish_threshold=1_000_000,
        ),
    )
    address = await server.start()
    try:
        batches = _build_batches(total_reports)
        shares: List[List[bytes]] = [[] for _ in range(CONNECTIONS)]
        for index, body in enumerate(batches):
            shares[index % CONNECTIONS].append(body)
        ingest_ms: List[float] = []
        counters = {"throttled": 0}
        load_start = time.perf_counter()
        await asyncio.gather(
            *(_drive(address, share, ingest_ms, counters) for share in shares)
        )
        ingest_seconds = time.perf_counter() - load_start

        client = _Client(*address)
        await client.connect()
        try:
            target = (
                "/v1/estimate?tenant=bench&kind=join&streams=A,B"
                f"&window={WINDOW_QUERY}"
            )
            query_ms: List[float] = []
            query_start = time.perf_counter()
            for _ in range(queries):
                start = time.perf_counter()
                status, _, _ = await client.request("GET", target)
                query_ms.append((time.perf_counter() - start) * 1e3)
                if status != 200:
                    raise RuntimeError(f"window query failed with HTTP {status}")
            query_seconds = time.perf_counter() - query_start
            status, report, _ = await client.request("GET", "/v1/status")
            if status != 200:
                raise RuntimeError(f"status failed with HTTP {status}")
            temporal = report.get("temporal") or {}
        finally:
            await client.close()
    finally:
        await server.shutdown()

    query = np.asarray(query_ms)
    return {
        "window_n": total_reports,
        "window_epoch_interval": WINDOW_EPOCH_INTERVAL,
        "window_epochs": WINDOW_EPOCHS,
        "window_query_epochs": WINDOW_QUERY,
        "window_throttled": counters["throttled"],
        "window_ingest_seconds": ingest_seconds,
        "window_ingest_reports_per_sec": (
            total_reports / ingest_seconds if ingest_seconds > 0 else float("inf")
        ),
        "window_closed_epochs": temporal.get("epoch", 0),
        "window_queries": len(query_ms),
        "window_query_p50_ms": float(np.percentile(query, 50)),
        "window_query_p99_ms": float(np.percentile(query, 99)),
        "window_estimates_per_sec": (
            len(query_ms) / query_seconds if query_seconds > 0 else float("inf")
        ),
    }


def run_service_bench(quick: bool = False) -> dict:
    """Run the load generator against a fresh service; returns the section."""
    total_reports = QUICK_REPORTS if quick else FULL_REPORTS
    queries = QUICK_QUERIES if quick else FULL_QUERIES
    replicated_reports = QUICK_REPLICATED if quick else FULL_REPLICATED
    windowed_reports = QUICK_WINDOWED if quick else FULL_WINDOWED
    window_queries = QUICK_WINDOW_QUERIES if quick else FULL_WINDOW_QUERIES
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        section = asyncio.run(_run(total_reports, queries, Path(tmp)))
    with tempfile.TemporaryDirectory(prefix="repro-bench-replicated-") as tmp:
        section.update(asyncio.run(_run_replicated(replicated_reports, Path(tmp))))
    with tempfile.TemporaryDirectory(prefix="repro-bench-windowed-") as tmp:
        section.update(
            asyncio.run(_run_windowed(windowed_reports, window_queries, Path(tmp)))
        )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small-n smoke mode")
    args = parser.parse_args(argv)
    section = run_service_bench(quick=args.quick)
    print(json.dumps(section, indent=2, sort_keys=True))
    print(
        f"[bench] service ingest {section['ingest_reports_per_sec']:,.0f} "
        f"reports/s over {section['connections']} connections "
        f"(ack p50 {section['ingest_p50_ms']:.2f}ms, "
        f"p99 {section['ingest_p99_ms']:.2f}ms); query p50 "
        f"{section['query_p50_ms']:.2f}ms, p99 {section['query_p99_ms']:.2f}ms"
    )
    print(
        f"[bench] quorum-ack ingest "
        f"{section['quorum_ingest_reports_per_sec']:,.0f} reports/s with "
        f"{section['quorum_replicas']} standby (ack p50 "
        f"{section['quorum_ingest_p50_ms']:.2f}ms, p99 "
        f"{section['quorum_ingest_p99_ms']:.2f}ms), digest match="
        f"{bool(section['quorum_digest_match'])}"
    )
    print(
        f"[bench] windowed estimate {section['window_estimates_per_sec']:,.0f} "
        f"queries/s over a {section['window_query_epochs']}-epoch window "
        f"(p50 {section['window_query_p50_ms']:.2f}ms, p99 "
        f"{section['window_query_p99_ms']:.2f}ms); temporal ingest "
        f"{section['window_ingest_reports_per_sec']:,.0f} reports/s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
