"""Regenerate Fig. 6: AE vs sketch space on Zipf(2.0), eps=10.

Paper shape: error falls as space grows; at equal space LDPJoinSketch(+)
beats Apple-HCMS.  At laptop scale the collision-dominated methods
(Apple-HCMS with calibrated read-out) still show the falling trend, while
LDPJoinSketch is already at its LDP-noise floor — more columns spread the
same reports thinner, so its curve is flat (see EXPERIMENTS.md).  The
dominance of LDPJoinSketch over Apple-HCMS at every space level is the
shape assertion here.
"""

from repro.experiments.figures import fig6_space

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS


def test_fig6_space(regenerate):
    table = regenerate(
        "fig6",
        fig6_space,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
    )
    # The collision-dominated Apple-HCMS series improves with space.
    hcms = table.filtered(method="Apple-HCMS")
    by_width = dict(zip(hcms.column("m"), hcms.column("ae")))
    assert by_width[max(by_width)] < by_width[min(by_width)]
    # At every space level the paper's method dominates Apple-HCMS.
    ldpjs = dict(
        zip(
            table.filtered(method="LDPJoinSketch").column("m"),
            table.filtered(method="LDPJoinSketch").column("ae"),
        )
    )
    for m, hcms_ae in by_width.items():
        assert ldpjs[m] < hcms_ae
    # Space accounting is monotone in m for every method.
    for method in ("Apple-HCMS", "LDPJoinSketch", "LDPJoinSketch+"):
        series = table.filtered(method=method)
        pairs = sorted(zip(series.column("m"), series.column("space_kb")))
        assert all(s1 < s2 for (_, s1), (_, s2) in zip(pairs, pairs[1:]))
