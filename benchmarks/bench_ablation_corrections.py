"""Ablations of the two documented design deviations (DESIGN.md §2).

1. **Non-target mass scaling** (Algorithm 5): the paper subtracts the
   *population*-scale frequent mass from sketches built by a single user
   *group*; we default to group-scaled mass.  This bench measures both.
2. **Frequent-item detection read-out**: the paper's Theorem 7 mean
   estimator vs our default collision-robust median read-out of the same
   sketch.  The mean read-out admits collision-inflated false positives
   whose selection bias corrupts the frequent-mass estimate.

Both ablations run LDPJoinSketch+ on a planted heavy-hitter workload where
the effects are visible, and print AE plus the frequent-item set size per
variant.
"""

from __future__ import annotations

import numpy as np

from repro.core import LDPJoinSketchPlus, SketchParams
from repro.experiments.reporting import ResultTable
from repro.join import exact_join_size

from conftest import RESULTS_DIR

SEEDS = range(4)


def _workload():
    rng = np.random.default_rng(77)
    domain = 4096
    heavy = np.repeat(np.array([5, 99, 1203], dtype=np.int64), 40_000)
    a = np.concatenate([heavy, rng.integers(0, domain, size=150_000)])
    b = np.concatenate([heavy, rng.integers(0, domain, size=150_000)])
    return a, b, domain


def _run_variant(a, b, domain, truth, **plus_kwargs):
    params = SketchParams(k=18, m=512, epsilon=4.0)
    protocol = LDPJoinSketchPlus(params, sample_rate=0.2, threshold=0.05, **plus_kwargs)
    errors, fi_sizes = [], []
    for seed in SEEDS:
        result = protocol.estimate(a, b, domain, rng=seed)
        errors.append(abs(result.estimate - truth))
        fi_sizes.append(result.frequent_items.size)
    return float(np.mean(errors)), float(np.mean(fi_sizes))


def test_ablation_corrections(benchmark):
    a, b, domain = _workload()
    truth = exact_join_size(a, b, domain)

    def run():
        table = ResultTable(
            "Ablation: Algorithm 5 corrections (planted 3-heavy-hitter workload)",
            ["variant", "ae", "re", "mean_fi_size"],
        )
        variants = {
            "group-scaled mass + median FI (default)": {},
            "paper-verbatim mass scaling": {"paper_faithful_correction": True},
            "paper-verbatim mean FI detection": {"fi_method": "mean"},
        }
        for name, kwargs in variants.items():
            ae, fi = _run_variant(a, b, domain, truth, **kwargs)
            table.add_row(name, ae, ae / truth, fi)
        table.add_note(f"truth = {truth}")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.to_text())
    table.to_csv(RESULTS_DIR / "ablation_corrections.csv")

    rows = {row[0]: row for row in table.rows}
    default_ae = rows["group-scaled mass + median FI (default)"][1]
    verbatim_ae = rows["paper-verbatim mass scaling"][1]
    # The verbatim population-scale subtraction over-corrects group-built
    # sketches; the group-scaled default must not be worse.
    assert default_ae <= verbatim_ae
