"""Regenerate Fig. 14: frequency-estimation MSE vs epsilon.

Paper shape: LDPJoinSketch tracks Apple-HCMS across the whole epsilon
range (near-identical structures); both flatten once sketch error
dominates; k-RR is far worse at small epsilon on large domains.
"""

from repro.experiments.figures import fig14_frequency

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS


def test_fig14_frequency(regenerate):
    table = regenerate(
        "fig14",
        fig14_frequency,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
    )
    for dataset in ("zipf-1.5", "movielens"):
        ldpjs = table.filtered(dataset=dataset, mechanism="LDPJoinSketch")
        hcms = table.filtered(dataset=dataset, mechanism="Apple-HCMS")
        krr = table.filtered(dataset=dataset, mechanism="k-RR")
        ldpjs_by_eps = dict(zip(ldpjs.column("epsilon"), ldpjs.column("mse")))
        hcms_by_eps = dict(zip(hcms.column("epsilon"), hcms.column("mse")))
        krr_by_eps = dict(zip(krr.column("epsilon"), krr.column("mse")))
        for eps, mse in ldpjs_by_eps.items():
            # LDPJoinSketch tracks Apple-HCMS within a small factor.
            assert mse < 3 * hcms_by_eps[eps] + 1e-9
        # Small-epsilon regime: sketches beat k-RR outright.
        small = min(ldpjs_by_eps)
        assert ldpjs_by_eps[small] < krr_by_eps[small]
