"""Regenerate Fig. 13: offline vs online running time per method.

Paper shape: for every sketch-based method the online (query) time is
negligible next to the offline (collection + construction) time; the
frequency-vector baselines pay a large online cost on big domains because
answering the join means scanning the whole domain.
"""

from repro.experiments.figures import fig13_efficiency

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS


def test_fig13_efficiency(regenerate):
    table = regenerate(
        "fig13",
        fig13_efficiency,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
    )
    for dataset in ("zipf-1.1", "gaussian", "twitter"):
        sub = table.filtered(dataset=dataset)
        rows = {
            method: (off, on)
            for method, off, on in zip(
                sub.column("method"),
                sub.column("offline_seconds"),
                sub.column("online_seconds"),
            )
        }
        # Sketch product queries answer near-instantly.
        offline, online = rows["LDPJoinSketch"]
        assert online < offline
        assert online < 0.1
