"""Regenerate Fig. 5: join-size RE of all six methods on all six datasets.

Paper shape: LDPJoinSketch / LDPJoinSketch+ sit near the non-private
FAGMS level and orders of magnitude below k-RR and FLH on the large-domain
datasets; on the small/low-skew datasets (facebook, gaussian) the gap
narrows because LDP noise needs data volume to average out.
"""


from repro.experiments.figures import fig5_accuracy

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS


def test_fig5_accuracy(regenerate):
    table = regenerate(
        "fig5",
        fig5_accuracy,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
    )

    def re_of(dataset: str, method: str) -> float:
        return float(table.filtered(dataset=dataset, method=method).column("re")[0])

    # Headline shape: ours beats the direct-perturbation baselines by a
    # wide margin on the large-domain skewed datasets.
    for dataset in ("zipf-1.1", "movielens"):
        assert re_of(dataset, "LDPJoinSketch") < re_of(dataset, "k-RR")
        assert re_of(dataset, "LDPJoinSketch") < re_of(dataset, "FLH")

    # Non-private FAGMS is the accuracy ceiling of the sketch family.
    assert re_of("zipf-1.1", "FAGMS") <= re_of("zipf-1.1", "LDPJoinSketch")
