"""Regenerate Fig. 7: total uplink communication per method.

Paper shape: the Hadamard-sampling methods (Apple-HCMS, LDPJoinSketch)
transmit a single bit plus indices per client; k-RR transmits a whole
domain value, costing the most on large domains; FLH sits between.
"""

from repro.experiments.figures import fig7_communication

from conftest import BENCH_SCALE, BENCH_SEED


def test_fig7_communication(regenerate):
    table = regenerate("fig7", fig7_communication, scale=BENCH_SCALE, seed=BENCH_SEED)
    for dataset in ("zipf-1.1", "movielens"):
        sub = table.filtered(dataset=dataset)
        bits = dict(zip(sub.column("method"), sub.column("total_bits")))
        assert bits["k-RR"] >= bits["LDPJoinSketch"]
        assert bits["k-RR"] >= bits["Apple-HCMS"]
        # LDPJoinSketch and Apple-HCMS share the wire format exactly.
        assert bits["LDPJoinSketch"] == bits["Apple-HCMS"]
