"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table/figure of the paper at laptop scale:
it runs the corresponding :mod:`repro.experiments.figures` function once
under ``benchmark.pedantic`` (the interesting measurements live *inside*
the experiment — estimator accuracy and timing — so wall-clock repetition
adds nothing), prints the regenerated table, and writes a CSV next to the
other results in ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Default workload fraction of the paper's stream sizes (see DESIGN.md).
BENCH_SCALE = 0.002
#: Default repetitions per configuration.
BENCH_TRIALS = 2
#: Master seed for every benchmark.
BENCH_SEED = 20240101


@pytest.fixture
def regenerate(benchmark):
    """Run a figure function once, print and persist its table."""

    def _run(name: str, func, **kwargs):
        table = benchmark.pedantic(lambda: func(**kwargs), rounds=1, iterations=1)
        print()
        print(table.to_text())
        path = table.to_csv(RESULTS_DIR / f"{name}.csv")
        print(f"[csv] {path}")
        return table

    return _run
