"""Render the measured-results section of EXPERIMENTS.md from the CSVs.

Usage (after ``pytest benchmarks/ --benchmark-only``)::

    python benchmarks/summarize_results.py            # print to stdout
    python benchmarks/summarize_results.py --apply    # splice into EXPERIMENTS.md

The script compresses each ``benchmarks/results/*.csv`` into the compact
series the paper plots (per-method summaries, trend endpoints), so the
document shows real measured numbers without pasting hundred-row tables.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent / "results"
EXPERIMENTS_MD = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
MARKER = "<!-- PER_EXPERIMENT_DETAILS -->"


def read(name):
    path = RESULTS / f"{name}.csv"
    if not path.exists():
        return None
    with path.open() as handle:
        return list(csv.DictReader(handle))


def fmt(x: float) -> str:
    x = float(x)
    if x == 0:
        return "0"
    if abs(x) >= 1e5 or abs(x) < 1e-3:
        return f"{x:.2e}"
    return f"{x:.4g}"


def series_table(rows, key_field, value_field, methods, method_field="method"):
    keys = sorted({float(r[key_field]) for r in rows})
    lines = ["| " + key_field + " | " + " | ".join(methods) + " |"]
    lines.append("|" + "---|" * (len(methods) + 1))
    for key in keys:
        cells = []
        for method in methods:
            vals = [
                float(r[value_field])
                for r in rows
                if r[method_field] == method and float(r[key_field]) == key
            ]
            cells.append(fmt(vals[0]) if vals else "-")
        lines.append("| " + fmt(key) + " | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def section(title, body):
    return f"### {title}\n\n{body}\n"


def build() -> str:
    parts = []

    rows = read("table2")
    if rows:
        body = "\n".join(
            f"- **{r['dataset']}**: paper {r['paper_domain']} domain / "
            f"{int(r['paper_size']):,} rows -> ours {r['our_domain']} domain / "
            f"{r['sample_size']} rows per stream, {r['distinct']} distinct, "
            f"top-1 share {fmt(r['top1_share'])}"
            for r in rows
        )
        parts.append(section("Table II — datasets", body))

    rows = read("fig5")
    if rows:
        methods = ["FAGMS", "k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch", "LDPJoinSketch+"]
        lines = ["| dataset | " + " | ".join(methods) + " | (RE, eps=4)"]
        lines.append("|" + "---|" * (len(methods) + 2))
        for ds in dict.fromkeys(r["dataset"] for r in rows):
            cells = [
                fmt([r["re"] for r in rows if r["dataset"] == ds and r["method"] == m][0])
                for m in methods
            ]
            lines.append(f"| {ds} | " + " | ".join(cells) + " | |")
        body = "\n".join(lines) + (
            "\n\nPaper shape: ours near FAGMS, orders below k-RR/FLH/HCMS — holds on "
            "every large-domain dataset; gaussian/tpcds sit below the laptop-scale "
            "noise floor for *all* LDP methods (truths of 1e4-1e5 vs noise ~1e6)."
        )
        parts.append(section("Fig. 5 — accuracy per dataset (RE)", body))

    rows = read("fig6")
    if rows:
        body = series_table(rows, "m", "ae", ["Apple-HCMS", "LDPJoinSketch", "LDPJoinSketch+"])
        body += (
            "\n\nPaper shape: AE falls with space. Measured: Apple-HCMS falls "
            "monotonically; LDPJoinSketch(+) already sit 2-3 orders below it at "
            "every width and ride their LDP-noise floor (flat in m) — the "
            "collision error the paper's 40M-row runs show shrinking with m is "
            "negligible for us from the start."
        )
        parts.append(section("Fig. 6 — AE vs space (Zipf 2.0, eps=10)", body))

    rows = read("fig7")
    if rows:
        lines = ["| dataset | method | bits/client | total bits |", "|---|---|---|---|"]
        for r in rows:
            lines.append(
                f"| {r['dataset']} | {r['method']} | {r['bits_per_report']} | "
                f"{int(r['total_bits']):,} |"
            )
        body = "\n".join(lines) + (
            "\n\nPaper shape: 1-bit Hadamard methods cheapest, k-RR most expensive "
            "— exact ordering reproduced (deterministic wire-format accounting)."
        )
        parts.append(section("Fig. 7 — communication cost", body))

    rows = read("fig8")
    if rows:
        chunks = []
        for ds in dict.fromkeys(r["dataset"] for r in rows):
            sub = [r for r in rows if r["dataset"] == ds]
            chunks.append(
                f"**{ds}** (AE)\n\n"
                + series_table(
                    sub, "epsilon", "ae",
                    ["k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch", "LDPJoinSketch+"],
                )
            )
        body = "\n\n".join(chunks) + (
            "\n\nPaper shape: everyone improves with eps; ours best in the "
            "strong-privacy regime; sketch curves flatten at large eps "
            "(collision/sampling floor). All reproduced; at eps>=8 the "
            "direct mechanisms cross below ours on the smaller domains — a "
            "small-n artefact (their perturbation error vanishes with e^eps "
            "while our row-sampling floor is n-bound, not eps-bound)."
        )
        parts.append(section("Fig. 8 — AE vs privacy budget", body))

    rows = read("fig9")
    if rows:
        m_rows = [r for r in rows if r["sweep"] == "m"]
        k_rows = [r for r in rows if r["sweep"] == "k"]
        chunks = []
        for ds in dict.fromkeys(r["dataset"] for r in rows):
            chunk = f"**{ds}** — m sweep (AE, k=18)\n\n" + series_table(
                [r for r in m_rows if r["dataset"] == ds], "m", "ae",
                ["FAGMS", "Apple-HCMS", "LDPJoinSketch", "LDPJoinSketch+"],
            )
            chunk += f"\n\n**{ds}** — k sweep (AE, m=1024)\n\n" + series_table(
                [r for r in k_rows if r["dataset"] == ds], "k", "ae",
                ["FAGMS", "Apple-HCMS", "LDPJoinSketch", "LDPJoinSketch+"],
            )
            chunks.append(chunk)
        body = "\n\n".join(chunks) + (
            "\n\nPaper shape: error falls with m for all; with k, FAGMS/HCMS "
            "improve while ours stay flat or degrade (row sampling splits the "
            "same reports across more rows) — both trends reproduced."
        )
        parts.append(section("Fig. 9 — AE vs sketch shape (m and k)", body))

    rows = read("fig10")
    if rows:
        lines = ["| r | AE |", "|---|---|"] + [
            f"| {r['r']} | {fmt(r['ae'])} |" for r in rows
        ]
        body = "\n".join(lines) + (
            "\n\nPaper shape: accuracy improves with the phase-1 sampling rate; "
            "measured trend agrees (noisy at laptop scale — the FI set is already "
            "stable, so r mainly sharpens the mass estimates)."
        )
        parts.append(section("Fig. 10 — LDPJS+ AE vs sampling rate r", body))

    rows = read("fig11")
    if rows:
        lines = ["| theta | AE | mean FI size |", "|---|---|---|"] + [
            f"| {fmt(r['theta'])} | {fmt(r['ae'])} | {fmt(r['fi_size'])} |" for r in rows
        ]
        body = "\n".join(lines) + (
            "\n\nPaper shape: U-curve in theta. Measured: the *mechanism* behind "
            "both arms reproduces cleanly — tiny theta floods FI with "
            "noise-level items (FI ~ 1.9e5, most of the domain) and large theta "
            "empties it (FI -> 1) — but the AE itself is dominated by "
            "LDPJS+'s noise floor at laptop scale, so the U in AE is shallow "
            "and noisy rather than the paper's orders-of-magnitude swing. The "
            "usable theta operating range sits near 1e-2 here vs the paper's "
            "1e-3 (our sampled phase-1 population is 1000x smaller, and the "
            "threshold must clear ~3*1.35*sqrt(|S|) LDP noise)."
        )
        parts.append(section("Fig. 11 — LDPJS+ AE vs threshold theta", body))

    rows = read("fig12")
    if rows:
        methods = ["FAGMS", "k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch", "LDPJoinSketch+"]
        lines = ["| alpha | " + " | ".join(methods) + " | (RE)"]
        lines.append("|" + "---|" * (len(methods) + 2))
        for ds in dict.fromkeys(r["dataset"] for r in rows):
            alpha = ds.split("-")[1]
            cells = [
                fmt([r["re"] for r in rows if r["dataset"] == ds and r["method"] == m][0])
                for m in methods
            ]
            lines.append(f"| {alpha} | " + " | ".join(cells) + " | |")
        body = "\n".join(lines) + (
            "\n\nPaper shape: RE falls as skewness grows for every method, ours "
            "dominating the LDP baselines throughout — reproduced."
        )
        parts.append(section("Fig. 12 — RE vs Zipf skewness", body))

    rows = read("fig13")
    if rows:
        lines = ["| dataset | method | offline s | online s |", "|---|---|---|---|"] + [
            f"| {r['dataset']} | {r['method']} | {fmt(r['offline_seconds'])} | "
            f"{fmt(r['online_seconds'])} |"
            for r in rows
        ]
        body = "\n".join(lines) + (
            "\n\nPaper shape: sketch methods answer joins near-instantly once "
            "built; the frequency-vector baselines pay a large online cost on "
            "big domains (they scan every candidate). Ours costs somewhat more "
            "offline than HCMS — the paper reports the same and calls it well "
            "spent."
        )
        parts.append(section("Fig. 13 — running time (offline vs online)", body))

    rows = read("fig14")
    if rows:
        chunks = []
        for ds in dict.fromkeys(r["dataset"] for r in rows):
            chunks.append(
                f"**{ds}** (MSE)\n\n"
                + series_table(
                    [r for r in rows if r["dataset"] == ds], "epsilon", "mse",
                    ["k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch"],
                    method_field="mechanism",
                )
            )
        body = "\n\n".join(chunks) + (
            "\n\nPaper shape: LDPJoinSketch sits on top of Apple-HCMS across the "
            "eps range (near-identical structures), both flattening once sketch "
            "error dominates; k-RR/FLH far worse at small eps — all reproduced."
        )
        parts.append(section("Fig. 14 — frequency-estimation MSE vs eps", body))

    rows = read("fig15")
    if rows:
        chunks = []
        for query in ("3-way", "4-way"):
            sub = [r for r in rows if r["query"] == query and r["method"] != "Compass"]
            methods = list(dict.fromkeys(r["method"] for r in sub))
            chunks.append(
                f"**{query}** (RE; Compass non-private RE = "
                + fmt([r["re"] for r in rows if r["query"] == query and r["method"] == "Compass"][0])
                + ")\n\n"
                + series_table(sub, "epsilon", "re", methods)
            )
        body = "\n\n".join(chunks) + (
            "\n\nPaper shape: LDPJoinSketch handles 3- and 4-way chains, error "
            "falling with eps then stabilising; frequency-based methods pay the "
            "product-domain price on 3-way and are infeasible for 4-way — "
            "reproduced (4-way runs sketch methods only, as in the paper)."
        )
        parts.append(section("Fig. 15 — multiway chain joins", body))

    for name, title in (
        ("scale_regime", "Scale regime (honesty bench)"),
        ("ablation_corrections", "Ablation: Algorithm 5 corrections"),
        ("ablation_calibration", "Ablation: baseline calibration"),
        ("ablation_substrate", "Ablation: AGMS vs Fast-AGMS"),
    ):
        rows = read(name)
        if rows:
            headers = list(rows[0].keys())
            lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
            for r in rows:
                lines.append("| " + " | ".join(fmt(r[h]) if _num(r[h]) else r[h] for h in headers) + " |")
            parts.append(section(title, "\n".join(lines)))

    return "\n".join(parts)


def _num(x) -> bool:
    try:
        float(x)
        return True
    except (TypeError, ValueError):
        return False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apply", action="store_true", help="splice into EXPERIMENTS.md")
    args = parser.parse_args()
    body = build()
    if args.apply:
        text = EXPERIMENTS_MD.read_text()
        head, _, _ = text.partition(MARKER)
        EXPERIMENTS_MD.write_text(head + MARKER + "\n\n" + body)
        print(f"updated {EXPERIMENTS_MD}")
    else:
        print(body)
    return 0


if __name__ == "__main__":
    sys.exit(main())
