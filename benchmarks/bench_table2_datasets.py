"""Regenerate Table II: the dataset inventory.

Paper: six datasets with the listed domains and sizes.  We report the
paper shape next to the laptop-scale sample actually used by the other
benchmarks, so every downstream table can be read in context.
"""

from repro.experiments.figures import table2_datasets

from conftest import BENCH_SCALE, BENCH_SEED


def test_table2_datasets(regenerate):
    table = regenerate("table2", table2_datasets, scale=BENCH_SCALE, seed=BENCH_SEED)
    assert len(table.rows) == 6
    # Every generated stream respects its Table II domain.
    for domain, distinct in zip(table.column("our_domain"), table.column("distinct")):
        assert distinct <= domain
