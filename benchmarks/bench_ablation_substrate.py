"""Substrate ablation: AGMS vs Fast-AGMS update cost (Section III-A).

Fast-AGMS exists because the original AGMS sketch touches every counter on
every update.  This bench quantifies that trade-off on identical data and
confirms both reach comparable accuracy — the reason the paper (and our
LDP client) builds on the bucketed variant.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.reporting import ResultTable
from repro.join import exact_self_join_size
from repro.sketches import AGMSSketch, FastAGMSSketch

from conftest import RESULTS_DIR


def test_ablation_agms_vs_fast_agms(benchmark):
    domain = 1024
    rng = np.random.default_rng(5)
    values = rng.integers(0, domain, size=30_000)
    truth = exact_self_join_size(values, domain)

    def run():
        table = ResultTable(
            "Ablation: AGMS vs Fast-AGMS (30k updates, k=5, m=64)",
            ["sketch", "build_seconds", "f2_estimate", "f2_re"],
        )
        start = time.perf_counter()
        agms = AGMSSketch.create(5, 64, seed=1)
        agms.update_batch(values)
        agms_time = time.perf_counter() - start

        start = time.perf_counter()
        fast = FastAGMSSketch.create(5, 64, seed=2)
        fast.update_batch(values)
        fast_time = time.perf_counter() - start

        for name, seconds, estimate in (
            ("AGMS", agms_time, agms.second_moment()),
            ("Fast-AGMS", fast_time, fast.second_moment()),
        ):
            table.add_row(name, seconds, estimate, abs(estimate - truth) / truth)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.to_text())
    table.to_csv(RESULTS_DIR / "ablation_substrate.csv")

    rows = {row[0]: row for row in table.rows}
    # The bucketed sketch must build much faster at comparable accuracy.
    assert rows["Fast-AGMS"][1] < rows["AGMS"][1]
    assert rows["Fast-AGMS"][3] < 0.5
    assert rows["AGMS"][3] < 0.5
