"""Regenerate Fig. 12: RE vs Zipf skewness alpha.

Paper shape: RE of every method falls as alpha grows (the true join size
explodes while distinct-value collisions shrink); the sketch methods stay
orders of magnitude below k-RR/FLH throughout.
"""

from repro.experiments.figures import fig12_skewness

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS


def test_fig12_skewness(regenerate):
    table = regenerate(
        "fig12",
        fig12_skewness,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
    )

    def series(method: str) -> dict:
        sub = table.filtered(method=method)
        return dict(zip(sub.column("dataset"), sub.column("re")))

    ldpjs = series("LDPJoinSketch")
    krr = series("k-RR")
    # Skew helps the sketch methods: the most skewed panel beats the least.
    assert ldpjs["zipf-1.9"] < ldpjs["zipf-1.1"]
    # And ours dominates k-RR on every skewness level.
    for dataset, re in ldpjs.items():
        assert re < krr[dataset]
