"""The scale regime of LDPJoinSketch+ (honesty bench; see EXPERIMENTS.md).

The paper's headline improvement — LDPJoinSketch+ beating LDPJoinSketch —
lives in the regime where hash-collision error dominates LDP sampling
noise.  Collision error grows like the frequent items' joint mass while
the noise floor grows like sqrt(F1), so the crossover needs tens of
millions of clients (the paper uses 40M).  This bench sweeps the stream
size at fixed parameters and reports both protocols' REs, making the
regime boundary visible instead of hiding it.
"""

from __future__ import annotations

import numpy as np

from repro.api import run_join_sketch
from repro.core import LDPJoinSketchPlus, SketchParams
from repro.data import ZipfGenerator
from repro.experiments.reporting import ResultTable
from repro.join import exact_join_size

from conftest import RESULTS_DIR

SIZES = (100_000, 400_000, 1_600_000)
SEEDS = range(3)


def test_scale_regime(benchmark):
    generator = ZipfGenerator(2**18, alpha=1.1)
    params = SketchParams(k=18, m=1024, epsilon=4.0)

    def run():
        table = ResultTable(
            "Scale regime: LDPJoinSketch vs LDPJoinSketch+ on Zipf(1.1), eps=4",
            ["n_per_stream", "truth", "re_plain", "re_plus", "mean_fi_size"],
        )
        rng = np.random.default_rng(11)
        for n in SIZES:
            a = generator.sample(n, rng)
            b = generator.sample(n, rng)
            truth = exact_join_size(a, b, generator.domain_size)
            plus = LDPJoinSketchPlus(params, sample_rate=0.1, threshold=0.01)
            plain_errors, plus_errors, fi_sizes = [], [], []
            for seed in SEEDS:
                plain = run_join_sketch(a, b, params, seed=seed)
                plain_errors.append(abs(plain.estimate - truth) / truth)
                result = plus.estimate(a, b, generator.domain_size, rng=seed)
                plus_errors.append(abs(result.estimate - truth) / truth)
                fi_sizes.append(result.frequent_items.size)
            table.add_row(
                n,
                float(truth),
                float(np.mean(plain_errors)),
                float(np.mean(plus_errors)),
                float(np.mean(fi_sizes)),
            )
        table.add_note("plus/plain RE ratio should shrink as n grows (paper regime: 40M)")
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.to_text())
    table.to_csv(RESULTS_DIR / "scale_regime.csv")

    # Both protocols must converge (RE falls) as the stream grows.
    plain = table.column("re_plain")
    plus = table.column("re_plus")
    assert plain[-1] < plain[0]
    assert plus[-1] < plus[0]
