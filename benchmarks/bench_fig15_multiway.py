"""Regenerate Fig. 15: multiway chain joins, RE vs epsilon.

Paper shape: LDPJoinSketch handles 3-way and 4-way chains; its error falls
with epsilon and then stabilises (sketch sampling noise floor); the
frequency-based baselines pay the product-domain price on 3-way and are
skipped on 4-way, exactly as in the paper.
"""

from repro.experiments.figures import fig15_multiway

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS

EPSILONS = (0.1, 1, 2, 4, 10)


def test_fig15_multiway(regenerate):
    table = regenerate(
        "fig15",
        fig15_multiway,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
        epsilons=EPSILONS,
    )
    three = table.filtered(query="3-way")
    ours = dict(
        zip(
            three.filtered(method="LDPJoinSketch").column("epsilon"),
            three.filtered(method="LDPJoinSketch").column("re"),
        )
    )
    krr = dict(
        zip(
            three.filtered(method="k-RR").column("epsilon"),
            three.filtered(method="k-RR").column("re"),
        )
    )
    # Ours improves by orders of magnitude from eps=0.1 to eps=10 ...
    assert ours[10.0] < ours[0.1]
    # ... and dominates k-RR in the strong-privacy regime.
    assert ours[1.0] < krr[1.0]
    # 4-way runs with the sketch methods only (paper's cut).
    four = set(table.filtered(query="4-way").column("method"))
    assert four == {"Compass", "LDPJoinSketch"}
