"""Regenerate Fig. 9: AE vs sketch width m (a-d) and depth k (e-h).

Paper shape: error falls with m for every sketch method (fewer
collisions).  With k, FAGMS/HCMS improve while the paper's methods stay
roughly flat or degrade slightly — each client feeds only one sampled row,
so deeper sketches spread the same reports thinner.
"""


from repro.experiments.figures import fig9_sketch_size

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_TRIALS

WIDTHS = (512, 1024, 2048, 4096)
DEPTHS = (9, 18, 28, 36)
DATASETS = ("zipf-1.1", "twitter")


def test_fig9_sketch_size(regenerate):
    table = regenerate(
        "fig9",
        fig9_sketch_size,
        scale=BENCH_SCALE,
        trials=BENCH_TRIALS,
        seed=BENCH_SEED,
        widths=WIDTHS,
        depths=DEPTHS,
        datasets=DATASETS,
    )
    # Width sweep: the non-private FAGMS error decreases with m (its only
    # error source is collisions); check end-to-end decrease.
    for dataset in DATASETS:
        series = table.filtered(dataset=dataset, sweep="m", method="FAGMS")
        by_width = dict(zip(series.column("m"), series.column("ae")))
        assert by_width[max(WIDTHS)] < by_width[min(WIDTHS)]

    # Depth sweep: FAGMS improves (or holds) with k while LDPJoinSketch
    # does not improve proportionally - the row-sampling effect.
    for dataset in DATASETS:
        fagms = table.filtered(dataset=dataset, sweep="k", method="FAGMS")
        fagms_by_k = dict(zip(fagms.column("k"), fagms.column("ae")))
        assert fagms_by_k[max(DEPTHS)] <= 2.0 * fagms_by_k[min(DEPTHS)]
