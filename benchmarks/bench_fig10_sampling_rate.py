"""Regenerate Fig. 10: LDPJoinSketch+ AE vs phase-1 sampling rate r.

Paper shape: accuracy improves (error falls) as the sampling rate grows,
because the frequent-item set and its mass estimates sharpen.
"""

import numpy as np

from repro.experiments.figures import fig10_sampling_rate

from conftest import BENCH_SCALE, BENCH_SEED


def test_fig10_sampling_rate(regenerate):
    table = regenerate(
        "fig10",
        fig10_sampling_rate,
        scale=BENCH_SCALE,
        trials=5,
        seed=BENCH_SEED,
    )
    rates = table.column("r")
    errors = table.column("ae")
    assert rates == sorted(rates)
    # Trend check on noisy data: the mean error over the two largest rates
    # must not exceed the mean over the two smallest by more than 50%.
    low = float(np.mean(errors[:2]))
    high = float(np.mean(errors[-2:]))
    assert high < 1.5 * low
